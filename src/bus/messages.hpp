// Bus-level messages: what travels inside reliable-channel DATA payloads
// between a member (or its proxy) and the event bus core.
//
// kPublish   member → bus    one event
// kEvent     bus → member    one matched event + the member's matching
//                            subscription ids (a member receives each event
//                            at most once even when several of its
//                            subscriptions match — §II-C exactly-once)
// kSubscribe member → bus    local subscription id + content filter
// kUnsubscribe member → bus  local subscription id
// kQuenchUpdate bus → member the current global filter set, for Elvin-style
//                            quenching (§VI future work, implemented here)
// kFlowControl  bus → member backpressure: a member queue crossed its
//                            high-water mark (pressure=true) or drained to
//                            the low-water mark (pressure=false); senders
//                            should pause/resume publishing. Only emitted
//                            when the bus has watermarks configured, so old
//                            peers never see the new type (back-compat
//                            gated like the JoinAccept session field).
// kInterestUpdate  both ways bus → routing peer: a versioned incremental
//                            (or full) push of the interest table the peer
//                            should subscribe with on the far side of a
//                            federation link; member → bus: a resync
//                            request after a version gap or digest
//                            mismatch. Only sent to gateway-role members,
//                            so old peers never see the new type. Rides
//                            the control class — interest tables are
//                            routing state and must never be shed.
// kReplUpdate   both ways   bus → warm standby: a versioned incremental
//                            diff (or a bare lease renewal) of the core's
//                            durable replication state, digest-checked
//                            exactly like kInterestUpdate; standby → bus:
//                            a resync request after a version gap or
//                            digest mismatch. Only sent to standby-role
//                            members, so old peers never see the new
//                            type. Always control class — replicated core
//                            state must never be shed (DESIGN.md §13).
// kReplSnapshot bus → standby a full replication-state replacement
//                            (admission or resync), the warm standby's
//                            "full table" counterpart of an incremental
//                            kReplUpdate. Control class, same gating.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sha256.hpp"
#include "pubsub/codec.hpp"

namespace amuse {

enum class BusMsgType : std::uint8_t {
  kPublish = 1,
  kEvent = 2,
  kSubscribe = 3,
  kUnsubscribe = 4,
  kQuenchUpdate = 5,
  kFlowControl = 6,
  kInterestUpdate = 7,
  kReplUpdate = 8,
  kReplSnapshot = 9,
};

[[nodiscard]] const char* to_string(BusMsgType t);

/// The payload of a kInterestUpdate message. Bus → routing peer it carries
/// either a full table replacement (`full`, after admit or on resync) or an
/// incremental add/remove diff that must apply on top of exactly
/// `version - 1`; `digest` is always the SHA-256 identity of the complete
/// table *after* the update, so the receiver can detect divergence and fall
/// back to a resync. Peer → bus only `request_resync` is meaningful.
struct InterestUpdate {
  std::uint64_t version = 0;
  /// FilterSet::digest() of the full table after applying this update.
  Digest256 digest{};
  /// True when added holds the complete table and removed is empty.
  bool full = false;
  /// Member → bus: the mirror lost sync, push a full table.
  bool request_resync = false;
  std::vector<Filter> added;
  std::vector<Filter> removed;
};

/// The payload of a kReplUpdate / kReplSnapshot message (DESIGN.md §13).
/// Bus → standby it carries either a full state replacement (`full`, on
/// admission or resync — sent as kReplSnapshot), an incremental op log that
/// must apply on top of exactly `version - 1`, or a bare lease renewal
/// (`lease`, no ops, version unchanged); `digest` is always the SHA-256
/// identity of the complete replication state *after* the update, so the
/// standby can detect divergence and fall back to a resync. `epoch` is the
/// promotion epoch of the sending core: a standby refuses updates from a
/// core whose epoch it has already seen superseded (split-brain fencing).
/// Standby → bus only `request_resync` is meaningful.
struct ReplUpdate {
  std::uint64_t version = 0;
  /// ReplState::digest() of the full state after applying this update.
  Digest256 digest{};
  /// Promotion epoch of the sending core.
  std::uint64_t epoch = 0;
  /// True when `ops` holds a complete encoded ReplState (kReplSnapshot).
  bool full = false;
  /// True for a bare lease renewal: no ops, version must match the mirror.
  bool lease = false;
  /// Standby → bus: the mirror lost sync, push a full snapshot.
  bool request_resync = false;
  /// Encoded ReplState (full) or encoded op log (incremental); see
  /// bus/replication.hpp for the codec.
  Bytes ops;
};

struct BusMessage {
  BusMsgType type = BusMsgType::kPublish;
  /// kSubscribe / kUnsubscribe: the member's local subscription id.
  std::uint64_t sub_id = 0;
  /// kPublish / kEvent.
  std::optional<Event> event;
  /// kSubscribe.
  std::optional<Filter> filter;
  /// kEvent: the member's local subscription ids the event matched.
  std::vector<std::uint64_t> matched;
  /// kQuenchUpdate: every filter currently registered anywhere in the cell.
  std::vector<Filter> quench_filters;
  /// kFlowControl: true = queues crossed the high-water mark, pause
  /// publishing; false = drained to the low-water mark, resume.
  bool pressure = false;
  /// kInterestUpdate.
  std::optional<InterestUpdate> interest;
  /// kReplUpdate / kReplSnapshot.
  std::optional<ReplUpdate> repl;

  [[nodiscard]] Bytes encode() const;
  /// Throws DecodeError on malformed input.
  [[nodiscard]] static BusMessage decode(BytesView data);

  /// The kEvent wire format is a small per-member header (message type +
  /// matched subscription ids) followed by the event body, so a fan-out can
  /// encode the body once and share it:
  ///   encode_event_header(m) ++ encode_event(e) == deliver(e, m).encode()
  [[nodiscard]] static Bytes encode_event_header(
      const std::vector<std::uint64_t>& matched);
  /// One-shot kPublish encoding without copying the event into a message.
  [[nodiscard]] static Bytes encode_publish(const Event& e);

  [[nodiscard]] static BusMessage publish(Event e);
  [[nodiscard]] static BusMessage deliver(Event e,
                                          std::vector<std::uint64_t> matched);
  [[nodiscard]] static BusMessage subscribe(std::uint64_t sub_id, Filter f);
  [[nodiscard]] static BusMessage unsubscribe(std::uint64_t sub_id);
  [[nodiscard]] static BusMessage quench_update(std::vector<Filter> filters);
  [[nodiscard]] static BusMessage flow_control(bool pressure);
  [[nodiscard]] static BusMessage interest_update(InterestUpdate update);
  /// Member → bus: the interest mirror lost sync, request a full table.
  [[nodiscard]] static BusMessage interest_resync_request();
  /// Bus → standby: kReplSnapshot when update.full, else kReplUpdate.
  [[nodiscard]] static BusMessage repl_update(ReplUpdate update);
  /// Standby → bus: the repl mirror lost sync, request a full snapshot.
  [[nodiscard]] static BusMessage repl_resync_request();
};

}  // namespace amuse
