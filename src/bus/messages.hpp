// Bus-level messages: what travels inside reliable-channel DATA payloads
// between a member (or its proxy) and the event bus core.
//
// kPublish   member → bus    one event
// kEvent     bus → member    one matched event + the member's matching
//                            subscription ids (a member receives each event
//                            at most once even when several of its
//                            subscriptions match — §II-C exactly-once)
// kSubscribe member → bus    local subscription id + content filter
// kUnsubscribe member → bus  local subscription id
// kQuenchUpdate bus → member the current global filter set, for Elvin-style
//                            quenching (§VI future work, implemented here)
// kFlowControl  bus → member backpressure: a member queue crossed its
//                            high-water mark (pressure=true) or drained to
//                            the low-water mark (pressure=false); senders
//                            should pause/resume publishing. Only emitted
//                            when the bus has watermarks configured, so old
//                            peers never see the new type (back-compat
//                            gated like the JoinAccept session field).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pubsub/codec.hpp"

namespace amuse {

enum class BusMsgType : std::uint8_t {
  kPublish = 1,
  kEvent = 2,
  kSubscribe = 3,
  kUnsubscribe = 4,
  kQuenchUpdate = 5,
  kFlowControl = 6,
};

[[nodiscard]] const char* to_string(BusMsgType t);

struct BusMessage {
  BusMsgType type = BusMsgType::kPublish;
  /// kSubscribe / kUnsubscribe: the member's local subscription id.
  std::uint64_t sub_id = 0;
  /// kPublish / kEvent.
  std::optional<Event> event;
  /// kSubscribe.
  std::optional<Filter> filter;
  /// kEvent: the member's local subscription ids the event matched.
  std::vector<std::uint64_t> matched;
  /// kQuenchUpdate: every filter currently registered anywhere in the cell.
  std::vector<Filter> quench_filters;
  /// kFlowControl: true = queues crossed the high-water mark, pause
  /// publishing; false = drained to the low-water mark, resume.
  bool pressure = false;

  [[nodiscard]] Bytes encode() const;
  /// Throws DecodeError on malformed input.
  [[nodiscard]] static BusMessage decode(BytesView data);

  /// The kEvent wire format is a small per-member header (message type +
  /// matched subscription ids) followed by the event body, so a fan-out can
  /// encode the body once and share it:
  ///   encode_event_header(m) ++ encode_event(e) == deliver(e, m).encode()
  [[nodiscard]] static Bytes encode_event_header(
      const std::vector<std::uint64_t>& matched);
  /// One-shot kPublish encoding without copying the event into a message.
  [[nodiscard]] static Bytes encode_publish(const Event& e);

  [[nodiscard]] static BusMessage publish(Event e);
  [[nodiscard]] static BusMessage deliver(Event e,
                                          std::vector<std::uint64_t> matched);
  [[nodiscard]] static BusMessage subscribe(std::uint64_t sub_id, Filter f);
  [[nodiscard]] static BusMessage unsubscribe(std::uint64_t sub_id);
  [[nodiscard]] static BusMessage quench_update(std::vector<Filter> filters);
  [[nodiscard]] static BusMessage flow_control(bool pressure);
};

}  // namespace amuse
