#include "bus/replication.hpp"

#include <utility>

#include "bus/repl_store.hpp"
#include "pubsub/codec.hpp"

namespace amuse {
namespace {

// Op log opcodes (the `ops` payload of an incremental ReplUpdate).
constexpr std::uint8_t kOpMemberAdmit = 1;
constexpr std::uint8_t kOpMemberPurge = 2;
constexpr std::uint8_t kOpSubAdd = 3;
constexpr std::uint8_t kOpSubRemove = 4;
constexpr std::uint8_t kOpSpoolAppend = 5;
constexpr std::uint8_t kOpSpoolEvict = 6;
constexpr std::uint8_t kOpCounters = 7;
constexpr std::uint8_t kOpStandbyAdmit = 8;
constexpr std::uint8_t kOpStandbyPurge = 9;

}  // namespace

Bytes ReplState::encode() const {
  Writer w;
  w.u64(epoch);
  w.u32(session_base);
  w.u32(proxy_incarnations);
  w.u64(fed_seq);
  w.u64(route_seq);
  w.u16(static_cast<std::uint16_t>(members.size()));
  for (const auto& [raw, m] : members) {
    w.u48(raw);
    w.str(m.device_type);
    w.str(m.role);
    w.u16(static_cast<std::uint16_t>(m.subs.size()));
    for (const auto& [local_id, filter] : m.subs) {
      w.u64(local_id);
      filter.encode(w);
    }
  }
  w.u16(static_cast<std::uint16_t>(standbys.size()));
  for (std::uint64_t raw : standbys) w.u48(raw);
  w.u32(static_cast<std::uint32_t>(spool.size()));
  for (const ReplSpoolEntry& e : spool) {
    w.u64(e.epoch);
    w.u64(e.seq);
    w.blob32(e.event);
  }
  return std::move(w).take();
}

ReplState ReplState::decode(BytesView data) {
  Reader r(data);
  ReplState s;
  s.epoch = r.u64();
  s.session_base = r.u32();
  s.proxy_incarnations = r.u32();
  s.fed_seq = r.u64();
  s.route_seq = r.u64();
  std::uint16_t n_members = r.u16();
  for (std::uint16_t i = 0; i < n_members; ++i) {
    std::uint64_t raw = r.u48();
    ReplMember m;
    m.device_type = r.str();
    m.role = r.str();
    std::uint16_t n_subs = r.u16();
    for (std::uint16_t j = 0; j < n_subs; ++j) {
      std::uint64_t local_id = r.u64();
      m.subs.emplace(local_id, Filter::decode(r));
    }
    s.members.emplace(raw, std::move(m));
  }
  std::uint16_t n_standbys = r.u16();
  for (std::uint16_t i = 0; i < n_standbys; ++i) s.standbys.insert(r.u48());
  std::uint32_t n_spool = r.u32();
  for (std::uint32_t i = 0; i < n_spool; ++i) {
    ReplSpoolEntry e;
    e.epoch = r.u64();
    e.seq = r.u64();
    e.event = r.blob32();
    s.spool.push_back(std::move(e));
  }
  if (!r.done()) throw DecodeError("trailing bytes in repl state");
  return s;
}

Digest256 ReplState::digest() const { return Sha256::hash(encode()); }

void ReplState::apply_ops(BytesView ops) {
  Reader r(ops);
  while (!r.done()) {
    std::uint8_t op = r.u8();
    switch (op) {
      case kOpMemberAdmit: {
        std::uint64_t raw = r.u48();
        ReplMember m;
        m.device_type = r.str();
        m.role = r.str();
        // Re-admission replaces the member wholesale, exactly like the
        // bus's purge-on-readmit.
        members[raw] = std::move(m);
        break;
      }
      case kOpMemberPurge: {
        std::uint64_t raw = r.u48();
        if (members.erase(raw) == 0) {
          throw DecodeError("repl op purges unknown member");
        }
        break;
      }
      case kOpSubAdd: {
        std::uint64_t raw = r.u48();
        std::uint64_t local_id = r.u64();
        Filter f = Filter::decode(r);
        auto it = members.find(raw);
        if (it == members.end()) {
          throw DecodeError("repl op subscribes unknown member");
        }
        // Upsert: re-subscribing a local id replaces its filter, matching
        // SubscriptionRegistry semantics.
        it->second.subs[local_id] = std::move(f);
        break;
      }
      case kOpSubRemove: {
        std::uint64_t raw = r.u48();
        std::uint64_t local_id = r.u64();
        auto it = members.find(raw);
        if (it == members.end() || it->second.subs.erase(local_id) == 0) {
          throw DecodeError("repl op unsubscribes unknown subscription");
        }
        break;
      }
      case kOpSpoolAppend: {
        ReplSpoolEntry e;
        e.epoch = r.u64();
        e.seq = r.u64();
        e.event = r.blob32();
        spool.push_back(std::move(e));
        break;
      }
      case kOpSpoolEvict: {
        std::uint32_t count = r.u32();
        if (count > spool.size()) {
          throw DecodeError("repl op evicts past the spool");
        }
        spool.erase(spool.begin(), spool.begin() + count);
        break;
      }
      case kOpCounters: {
        session_base = r.u32();
        proxy_incarnations = r.u32();
        fed_seq = r.u64();
        route_seq = r.u64();
        break;
      }
      case kOpStandbyAdmit: {
        standbys.insert(r.u48());
        break;
      }
      case kOpStandbyPurge: {
        if (standbys.erase(r.u48()) == 0) {
          throw DecodeError("repl op purges unknown standby");
        }
        break;
      }
      default:
        throw DecodeError("bad repl opcode " + std::to_string(op));
    }
  }
}

void ReplLog::restore(ReplState state) {
  state_ = std::move(state);
  version_ = 0;
  ops_ = Writer();
  pending_ops_ = 0;
  spool_bytes_ = 0;
  for (const ReplSpoolEntry& e : state_.spool) spool_bytes_ += e.event.size();
  persist_snapshot();
}

void ReplLog::set_store(std::shared_ptr<ReplStore> store) {
  store_ = std::move(store);
  persist_snapshot();
}

void ReplLog::commit_op(std::size_t mark) {
  ++pending_ops_;
  if (!store_) return;
  const Bytes& buf = ops_.bytes();
  BytesView op(buf.data() + mark, buf.size() - mark);
  store_->append_ops(op);
  wal_op_bytes_ += op.size();
  if (wal_op_bytes_ >= limits_.wal_compact_bytes) persist_snapshot();
}

void ReplLog::persist_snapshot() {
  wal_op_bytes_ = 0;
  if (store_) store_->snapshot(state_.encode());
}

void ReplLog::set_epoch(std::uint64_t epoch) {
  state_.epoch = epoch;
  persist_snapshot();
}

void ReplLog::member_admitted(ServiceId id, const std::string& device_type,
                              const std::string& role) {
  ReplMember m;
  m.device_type = device_type;
  m.role = role;
  state_.members[id.raw()] = std::move(m);
  std::size_t mark = ops_.size();
  ops_.u8(kOpMemberAdmit);
  ops_.u48(id.raw());
  ops_.str(device_type);
  ops_.str(role);
  commit_op(mark);
}

void ReplLog::member_purged(ServiceId id) {
  if (state_.members.erase(id.raw()) == 0) return;
  std::size_t mark = ops_.size();
  ops_.u8(kOpMemberPurge);
  ops_.u48(id.raw());
  commit_op(mark);
}

void ReplLog::standby_admitted(ServiceId id) {
  if (!state_.standbys.insert(id.raw()).second) return;
  std::size_t mark = ops_.size();
  ops_.u8(kOpStandbyAdmit);
  ops_.u48(id.raw());
  commit_op(mark);
}

void ReplLog::standby_purged(ServiceId id) {
  if (state_.standbys.erase(id.raw()) == 0) return;
  std::size_t mark = ops_.size();
  ops_.u8(kOpStandbyPurge);
  ops_.u48(id.raw());
  commit_op(mark);
}

void ReplLog::sub_added(ServiceId member, std::uint64_t local_id,
                        const Filter& f) {
  auto it = state_.members.find(member.raw());
  if (it == state_.members.end()) return;
  it->second.subs[local_id] = f;
  std::size_t mark = ops_.size();
  ops_.u8(kOpSubAdd);
  ops_.u48(member.raw());
  ops_.u64(local_id);
  f.encode(ops_);
  commit_op(mark);
}

void ReplLog::sub_removed(ServiceId member, std::uint64_t local_id) {
  auto it = state_.members.find(member.raw());
  if (it == state_.members.end()) return;
  if (it->second.subs.erase(local_id) == 0) return;
  std::size_t mark = ops_.size();
  ops_.u8(kOpSubRemove);
  ops_.u48(member.raw());
  ops_.u64(local_id);
  commit_op(mark);
}

std::vector<ReplSpoolEntry> ReplLog::spool_append(std::uint64_t epoch,
                                                  std::uint64_t seq,
                                                  Bytes event) {
  std::size_t mark = ops_.size();
  ops_.u8(kOpSpoolAppend);
  ops_.u64(epoch);
  ops_.u64(seq);
  ops_.blob32(event);
  spool_bytes_ += event.size();
  state_.spool.push_back(ReplSpoolEntry{epoch, seq, std::move(event)});
  commit_op(mark);

  std::vector<ReplSpoolEntry> evicted;
  while (state_.spool.size() > limits_.max_spool_events ||
         (spool_bytes_ > limits_.max_spool_bytes && state_.spool.size() > 1)) {
    spool_bytes_ -= state_.spool.front().event.size();
    evicted.push_back(std::move(state_.spool.front()));
    state_.spool.pop_front();
  }
  if (!evicted.empty()) {
    mark = ops_.size();
    ops_.u8(kOpSpoolEvict);
    ops_.u32(static_cast<std::uint32_t>(evicted.size()));
    commit_op(mark);
  }
  return evicted;
}

void ReplLog::counters_changed(std::uint32_t session_base,
                               std::uint32_t proxy_incarnations,
                               std::uint64_t fed_seq, std::uint64_t route_seq) {
  if (state_.session_base == session_base &&
      state_.proxy_incarnations == proxy_incarnations &&
      state_.fed_seq == fed_seq && state_.route_seq == route_seq) {
    return;
  }
  state_.session_base = session_base;
  state_.proxy_incarnations = proxy_incarnations;
  state_.fed_seq = fed_seq;
  state_.route_seq = route_seq;
  std::size_t mark = ops_.size();
  ops_.u8(kOpCounters);
  ops_.u32(session_base);
  ops_.u32(proxy_incarnations);
  ops_.u64(fed_seq);
  ops_.u64(route_seq);
  commit_op(mark);
}

ReplUpdate ReplLog::take_update() {
  ReplUpdate u;
  u.epoch = state_.epoch;
  if (pending_ops_ == 0) {
    // Bare lease renewal: proves the core is alive and that the standby's
    // version still matches, without re-hashing any state into the stream.
    u.lease = true;
    u.version = version_;
    return u;
  }
  u.version = ++version_;
  u.ops = std::move(ops_).take();
  ops_ = Writer();
  pending_ops_ = 0;
  u.digest = state_.digest();
  return u;
}

ReplUpdate ReplLog::snapshot() const {
  ReplUpdate u;
  u.full = true;
  u.epoch = state_.epoch;
  u.version = version_;
  u.ops = state_.encode();
  u.digest = state_.digest();
  return u;
}

ReplMirror::Apply ReplMirror::apply(const ReplUpdate& update) {
  if (update.epoch < max_epoch_) return Apply::kStaleEpoch;
  max_epoch_ = update.epoch;

  if (update.full) {
    ReplState incoming;
    try {
      incoming = ReplState::decode(update.ops);
    } catch (const DecodeError&) {
      synced_ = false;
      return Apply::kResyncNeeded;
    }
    // A snapshot that does not hash to its own digest is corrupt; refuse
    // it rather than silently diverging from the active core.
    if (!digest_equal(incoming.digest(), update.digest)) {
      synced_ = false;
      return Apply::kResyncNeeded;
    }
    state_ = std::move(incoming);
    version_ = update.version;
    synced_ = true;
    return Apply::kApplied;
  }

  if (update.lease) {
    if (!synced_ || update.version != version_) return Apply::kResyncNeeded;
    return Apply::kApplied;
  }

  // Incremental: only on top of exactly version - 1, only once synced.
  if (!synced_ || update.version != version_ + 1) {
    synced_ = false;
    return Apply::kResyncNeeded;
  }
  ReplState next = state_;
  try {
    next.apply_ops(update.ops);
  } catch (const DecodeError&) {
    synced_ = false;
    return Apply::kResyncNeeded;
  }
  if (!digest_equal(next.digest(), update.digest)) {
    synced_ = false;
    return Apply::kResyncNeeded;
  }
  state_ = std::move(next);
  version_ = update.version;
  return Apply::kApplied;
}

ReplState ReplMirror::take_state() {
  synced_ = false;
  return std::move(state_);
}

}  // namespace amuse
