// BusClient: the member-side library for services that speak the bus wire
// protocol themselves ("simple proxies for complex sensors" — the service
// is smart, its proxy at the bus is a ForwardingProxy).
//
// Gives application code the event-bus programming model of Fig. 3:
// subscribe with a content filter and a handler (arrow 1), publish events
// (with transport-level acknowledgement and retransmission underneath), and
// receive matching events pushed by the bus (arrow 2) exactly once, in
// per-sender order.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "bus/interest_table.hpp"
#include "bus/messages.hpp"
#include "bus/quench.hpp"
#include "common/annotations.hpp"
#include "net/transport.hpp"
#include "wire/reliable_channel.hpp"

namespace amuse {

struct BusClientConfig {
  ReliableChannelConfig channel;
  /// Honour quench tables pushed by the bus (suppress unwanted publishes).
  bool quench = false;
  /// Channel incarnation tag; distinct per (re)join. 0 = derive one from
  /// the transport id (fine for tests; SMC membership supplies real ones).
  std::uint32_t session = 0;
  /// When false the client does not install the transport's receive
  /// handler; the owner (e.g. SmcMember, which muxes the endpoint between
  /// discovery agent and bus client) feeds handle_datagram() itself.
  bool install_receive_handler = true;
};

class BusClient {
 public:
  using Handler = std::function<void(const Event&)>;

  BusClient(Executor& executor, std::shared_ptr<Transport> transport,
            ServiceId bus, BusClientConfig config = {});
  ~BusClient();

  BusClient(const BusClient&) = delete;
  BusClient& operator=(const BusClient&) = delete;

  /// Registers a content subscription; the handler runs for every matching
  /// event. Returns the local subscription id.
  AMUSE_AFFINITY(member_executor)
  std::uint64_t subscribe(const Filter& filter, Handler handler);
  AMUSE_AFFINITY(member_executor) void unsubscribe(std::uint64_t id);

  /// Publishes an event. Returns false when the event was quenched
  /// (suppressed because no subscription in the cell matches) or when the
  /// bus has announced flow-control pressure. A pressured publish is still
  /// sent (delivery stays reliable); the false return is the advisory
  /// signal for publishers that can defer — see SmcMember, which buffers.
  AMUSE_AFFINITY(member_executor) bool publish(Event event);
  /// Shared-instance variant: pays exactly one copy — the copy-on-write
  /// restamp that assigns this client's publisher id and sequence number.
  /// All other attributes (including federation origin stamps) forward
  /// untouched.
  AMUSE_AFFINITY(member_executor) bool publish(const EventPtr& event);

  /// Invoked on kFlowControl transitions from the bus: true when the bus
  /// asks publishers to back off, false when pressure is released.
  using PressureFn = std::function<void(bool)>;
  void set_on_pressure(PressureFn fn) { on_pressure_ = std::move(fn); }
  /// True while the bus's last kFlowControl announced pressure.
  [[nodiscard]] bool pressured() const { return pressured_; }

  /// Handler for events that arrive for an already-unsubscribed id
  /// (in-flight at unsubscribe time); defaults to dropping them.
  void set_unclaimed_handler(Handler handler);

  /// Invoked after every cleanly applied kInterestUpdate with the current
  /// remote interest table (gateway members only; never fires for plain
  /// members — the bus only pushes interest to gateway-role peers).
  using InterestFn = std::function<void(const FilterSet&)>;
  void set_on_interest(InterestFn fn) { on_interest_ = std::move(fn); }
  /// The mirror of the interest table the bus last pushed to this peer.
  [[nodiscard]] const InterestMirror& interest_mirror() const {
    return mirror_;
  }

  /// Invoked for every kReplUpdate / kReplSnapshot from the bus (standby
  /// members only; never fires for plain members — the bus only streams
  /// replication to standby-role peers). The receiver owns the ReplMirror
  /// and decides when to request_repl_resync().
  using ReplFn = std::function<void(const ReplUpdate&)>;
  void set_on_repl(ReplFn fn) { on_repl_ = std::move(fn); }
  /// Standby → bus: the repl mirror lost sync, ask for a full snapshot.
  /// Control class, like the stream itself.
  AMUSE_AFFINITY(member_executor) void request_repl_resync();

  /// Pre-dispatch delivery filter: runs once per arriving kEvent, before
  /// any handler; return false to drop the event (counted, not silent).
  /// SmcMember installs the HA (epoch, seq) re-delivery dedup here.
  using DeliveryFilter = std::function<bool(const Event&)>;
  void set_delivery_filter(DeliveryFilter filter) {
    delivery_filter_ = std::move(filter);
  }

  /// Canonical digest of the last quench table the bus pushed (all-zero
  /// until one arrives). A re-homing member hands this to the discovery
  /// agent so an unchanged table is not pushed again (DESIGN.md §13).
  [[nodiscard]] const Digest256& quench_digest() const {
    return quench_digest_;
  }
  [[nodiscard]] bool quench_received() const { return quench_received_; }

  /// Feeds one raw datagram (used when install_receive_handler is false).
  AMUSE_AFFINITY(member_executor)
  void handle_datagram(ServiceId src, BytesView data);

  [[nodiscard]] ServiceId id() const { return transport_->local_id(); }
  [[nodiscard]] ServiceId bus() const { return bus_; }

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t quenched = 0;
    std::uint64_t pressured_publishes = 0;  // sent while under flow control
    std::uint64_t flow_signals = 0;         // kFlowControl messages received
    std::uint64_t events_received = 0;
    std::uint64_t handler_invocations = 0;
    std::uint64_t interest_updates = 0;   // cleanly applied pushes
    std::uint64_t interest_resyncs = 0;   // resync requests sent
    std::uint64_t repl_updates = 0;       // repl stream messages received
    std::uint64_t repl_resyncs = 0;       // repl resync requests sent
    std::uint64_t deliveries_filtered = 0;  // dropped by the delivery
                                            // filter (HA re-delivery dups)
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ReliableChannelStats& channel_stats() const {
    return channel_->stats();
  }
  [[nodiscard]] const QuenchTable& quench_table() const { return quench_; }
  /// Events queued towards the bus but not yet acknowledged.
  [[nodiscard]] std::size_t backlog() const {
    return channel_->queued() + channel_->in_flight();
  }

 private:
  AMUSE_AFFINITY(member_executor) void on_message(BytesView message);

  std::shared_ptr<Transport> transport_;
  ServiceId bus_;
  BusClientConfig config_;
  std::unique_ptr<ReliableChannel> channel_;
  std::map<std::uint64_t, Handler> handlers_;
  std::uint64_t next_sub_id_ = 1;
  std::uint64_t next_pub_seq_ = 1;
  Handler unclaimed_;
  PressureFn on_pressure_;
  InterestFn on_interest_;
  ReplFn on_repl_;
  DeliveryFilter delivery_filter_;
  bool pressured_ = false;
  QuenchTable quench_;
  Digest256 quench_digest_{};
  bool quench_received_ = false;
  InterestMirror mirror_;
  Stats stats_;
  Executor& executor_;
};

}  // namespace amuse
