#include "bus/interest_table.hpp"

#include <utility>

namespace amuse {

void InterestTable::rebuild(std::map<ServiceId, std::vector<Filter>> by_owner) {
  by_owner_ = std::move(by_owner);
  std::vector<Filter> all;
  for (const auto& [owner, filters] : by_owner_) {
    all.insert(all.end(), filters.begin(), filters.end());
  }
  all_ = FilterSet(std::move(all));
}

FilterSet InterestTable::export_for(ServiceId link) const {
  std::vector<Filter> kept;
  for (const auto& [owner, filters] : by_owner_) {
    if (owner == link) continue;  // split horizon: never echo a link's own
    kept.insert(kept.end(), filters.begin(), filters.end());
  }
  FilterSet view(std::move(kept));
  view.compact();
  return view;
}

std::optional<InterestUpdate> InterestTable::refresh_link(ServiceId link) {
  FilterSet view = export_for(link);
  auto it = links_.find(link);
  if (it == links_.end()) {
    // First push to this link: a full table.
    LinkState state;
    state.version = 1;
    state.pushed = std::move(view);
    InterestUpdate u;
    u.version = state.version;
    u.digest = state.pushed.digest();
    u.full = true;
    u.added = state.pushed.filters();
    links_.emplace(link, std::move(state));
    return u;
  }
  if (view == it->second.pushed) return std::nullopt;
  InterestUpdate u;
  u.version = ++it->second.version;
  u.added = it->second.pushed.added_in(view);
  u.removed = it->second.pushed.removed_in(view);
  u.digest = view.digest();
  it->second.pushed = std::move(view);
  return u;
}

InterestUpdate InterestTable::full_update(ServiceId link) {
  LinkState& state = links_[link];
  state.pushed = export_for(link);
  ++state.version;
  InterestUpdate u;
  u.version = state.version;
  u.digest = state.pushed.digest();
  u.full = true;
  u.added = state.pushed.filters();
  return u;
}

void InterestTable::drop_link(ServiceId link) { links_.erase(link); }

std::uint64_t InterestTable::link_version(ServiceId link) const {
  auto it = links_.find(link);
  return it == links_.end() ? 0 : it->second.version;
}

InterestMirror::Apply InterestMirror::apply(const InterestUpdate& update) {
  if (update.full) {
    set_ = FilterSet(update.added);
    version_ = update.version;
    // A full table that does not hash to its own digest means the two
    // sides canonicalise differently — stay unsynced and keep asking.
    synced_ = digest_equal(set_.digest(), update.digest);
    return synced_ ? Apply::kApplied : Apply::kResyncNeeded;
  }
  if (!synced_ || update.version != version_ + 1) {
    // Version gap (or no full table yet): the local replica is stale and
    // must not be routed on until a full table arrives.
    synced_ = false;
    return Apply::kResyncNeeded;
  }
  for (const Filter& f : update.removed) set_.erase(f);
  for (const Filter& f : update.added) set_.insert(f);
  version_ = update.version;
  if (!digest_equal(set_.digest(), update.digest)) {
    synced_ = false;
    return Apply::kResyncNeeded;
  }
  return Apply::kApplied;
}

void InterestMirror::reset() {
  synced_ = false;
  version_ = 0;
  set_ = FilterSet();
}

bool OriginDedup::admit(std::uint64_t origin_cell, std::uint64_t seq) {
  Window& w = origins_[origin_cell];
  if (seq < w.floor) return false;  // fell off the window: presume seen
  if (!w.seen.insert(seq).second) return false;
  w.order.push_back(seq);
  while (w.order.size() > window_) {
    std::uint64_t evicted = w.order.front();
    w.order.pop_front();
    w.seen.erase(evicted);
    if (evicted >= w.floor) w.floor = evicted + 1;
  }
  return true;
}

}  // namespace amuse
