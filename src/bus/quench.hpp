// Client-side quench table (Elvin-style quenching, paper §VI).
//
// The bus pushes the cell's global filter set to quench-enabled members;
// before transmitting, a publisher checks its next event against the table
// and suppresses events no subscription anywhere would match — saving
// radio transmissions, the dominant power cost on body-worn devices.
#pragma once

#include <vector>

#include "pubsub/brute_matcher.hpp"

namespace amuse {

class QuenchTable {
 public:
  /// Replaces the table with the latest global filter set.
  void update(const std::vector<Filter>& filters);

  /// Would any current subscription match this event? Publishers may send
  /// unconditionally while no table has arrived yet (fail-open: quenching
  /// is an optimisation, never a correctness mechanism).
  [[nodiscard]] bool wanted(const Event& event) const;

  [[nodiscard]] bool have_table() const { return have_table_; }
  [[nodiscard]] std::size_t size() const { return matcher_.size(); }

 private:
  BruteForceMatcher matcher_;
  std::size_t count_ = 0;
  bool have_table_ = false;
};

}  // namespace amuse
