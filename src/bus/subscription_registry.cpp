#include "bus/subscription_registry.hpp"

#include <algorithm>

namespace amuse {

SubscriptionRegistry::SubscriptionRegistry(std::unique_ptr<Matcher> matcher)
    : matcher_(std::move(matcher)) {}

void SubscriptionRegistry::subscribe(ServiceId member, std::uint64_t local_id,
                                     const Filter& filter) {
  unsubscribe(member, local_id);
  SubId id = next_id_++;
  matcher_->add(id, filter);
  by_sub_.emplace(id, Record{member, local_id, filter});
  by_member_[member].emplace(local_id, id);
}

void SubscriptionRegistry::unsubscribe(ServiceId member,
                                       std::uint64_t local_id) {
  auto mit = by_member_.find(member);
  if (mit == by_member_.end()) return;
  auto lit = mit->second.find(local_id);
  if (lit == mit->second.end()) return;
  matcher_->remove(lit->second);
  by_sub_.erase(lit->second);
  mit->second.erase(lit);
  if (mit->second.empty()) by_member_.erase(mit);
}

void SubscriptionRegistry::remove_member(ServiceId member) {
  auto mit = by_member_.find(member);
  if (mit == by_member_.end()) return;
  for (const auto& [local, sub] : mit->second) {
    matcher_->remove(sub);
    by_sub_.erase(sub);
  }
  by_member_.erase(mit);
}

void SubscriptionRegistry::match(const Event& e, MatchResult& out) const {
  std::vector<SubId> hits;
  matcher_->match(e, hits);
  for (SubId id : hits) {
    auto it = by_sub_.find(id);
    if (it == by_sub_.end()) continue;
    out[it->second.member].push_back(it->second.local_id);
  }
  for (auto& [member, locals] : out) {
    std::sort(locals.begin(), locals.end());
    locals.erase(std::unique(locals.begin(), locals.end()), locals.end());
  }
}

std::vector<Filter> SubscriptionRegistry::all_filters() const {
  std::vector<Filter> out;
  out.reserve(by_sub_.size());
  for (const auto& [id, rec] : by_sub_) out.push_back(rec.filter);
  return out;
}

std::map<ServiceId, std::vector<Filter>>
SubscriptionRegistry::filters_by_member() const {
  std::map<ServiceId, std::vector<Filter>> out;
  for (const auto& [member, locals] : by_member_) {
    std::vector<Filter>& filters = out[member];
    filters.reserve(locals.size());
    for (const auto& [local, sub] : locals) {
      filters.push_back(by_sub_.at(sub).filter);
    }
  }
  return out;
}

std::map<ServiceId, std::map<std::uint64_t, Filter>>
SubscriptionRegistry::subscriptions_by_member() const {
  std::map<ServiceId, std::map<std::uint64_t, Filter>> out;
  for (const auto& [member, locals] : by_member_) {
    std::map<std::uint64_t, Filter>& subs = out[member];
    for (const auto& [local, sub] : locals) {
      subs.emplace(local, by_sub_.at(sub).filter);
    }
  }
  return out;
}

std::size_t SubscriptionRegistry::member_subscriptions(
    ServiceId member) const {
  auto it = by_member_.find(member);
  return it == by_member_.end() ? 0 : it->second.size();
}

}  // namespace amuse
