// Minimal leveled logger. Components log through a named Logger; the global
// threshold is settable by examples/tests (quiet by default so benchmarks
// and ctest output stay clean).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace amuse {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Sink for one formatted line; replaceable for tests.
using LogSink = void (*)(LogLevel, std::string_view component,
                         std::string_view message);
void set_log_sink(LogSink sink);

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view msg);
}

class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <typename... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <typename... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <typename... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <typename... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void log(LogLevel level, const Args&... args) const {
    if (level < log_level()) return;
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(level, component_, oss.str());
  }

  std::string component_;
};

}  // namespace amuse
