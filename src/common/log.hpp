// Minimal leveled logger. Components log through a named Logger; the global
// threshold is settable by examples/tests (quiet by default so benchmarks
// and ctest output stay clean).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace amuse {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Sink for one formatted line; replaceable for tests.
///
/// Thread-safety contract: set_log_sink() may be called from any thread at
/// any time, concurrently with logging. The swap is a release store matched
/// by an acquire load in the emit path, so state the installing thread
/// prepared before the call is visible to every thread that logs through
/// the new sink. The sink is a plain function pointer on purpose: swapping
/// it can never destroy a callable out from under a concurrent emit (an
/// emitter that raced the swap simply calls the previous function, which
/// must therefore remain safe to call for the lifetime of the program —
/// sinks in unloadable shared objects are not supported). The sink itself
/// must be internally thread-safe: emits from different threads are not
/// serialised.
using LogSink = void (*)(LogLevel, std::string_view component,
                         std::string_view message);
void set_log_sink(LogSink sink);

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view msg);
}

class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <typename... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <typename... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <typename... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <typename... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void log(LogLevel level, const Args&... args) const {
    if (level < log_level()) return;
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(level, component_, oss.str());
  }

  std::string component_;
};

}  // namespace amuse
