#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace amuse {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

void default_sink(LogLevel level, std::string_view component,
                  std::string_view message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %.*s: %.*s\n",
               kNames[static_cast<int>(level)],
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

std::atomic<LogSink> g_sink{&default_sink};

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

// Release/acquire pairing: everything the installing thread wrote before
// set_log_sink() (e.g. the buffer a test sink appends to) happens-before any
// emit() that observes the new pointer. LogSink is deliberately a plain
// function pointer — there is no callable object whose destruction could
// race with a concurrent emit(); an emitter that loaded the previous pointer
// just before a swap calls a function that is still valid code.
void set_log_sink(LogSink sink) {
  g_sink.store(sink ? sink : &default_sink, std::memory_order_release);
}

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view msg) {
  g_sink.load(std::memory_order_acquire)(level, component, msg);
}
}  // namespace detail

}  // namespace amuse
