// Thread-capability and executor-affinity annotations (DESIGN.md §10).
//
// The threading model of the event service is deliberately narrow:
//   1. All protocol state (bus, channels, membership, proxies, members) is
//      owned by exactly one Executor and is only touched from that
//      executor's consumer thread. Cross-thread code paths (the UDP receive
//      thread, foreign producers) hand work over with Executor::post().
//   2. The few genuinely cross-thread surfaces (RealExecutor's queue,
//      UdpTransport's handler slot, the log sink) carry explicit
//      synchronisation — and from this header on, that synchronisation is
//      machine-checked.
//
// Layer 1 — clang Thread Safety Analysis. `amuse::Mutex` / `MutexLock` /
// `CondVar` wrap the std primitives with capability annotations so that
// `-Wthread-safety` (CMake: AMUSE_THREAD_SAFETY=ON, clang only) proves
// every access to a AMUSE_GUARDED_BY field happens under its mutex. Raw
// std::mutex / std::lock_guard are banned in src/ outside this header
// (check_invariants.py, invariant I9): a mutex the analysis cannot see is
// a mutex nobody can prove is held.
//
// Layer 2 — executor affinity. AMUSE_AFFINITY(label) declares that a
// method must run on its owning executor's consumer thread; the static
// checker (scripts/check_affinity.py) walks the call graph from annotated
// receive-thread entry points (AMUSE_RECEIVE_CONTEXT) and fails on any
// path into an affinity method that does not pass through an executor
// post() hop. AMUSE_ASSERT_ON_EXECUTOR (sim/executor.hpp) is the dynamic
// spot-check of the same claim.
//
// Every macro degrades to nothing on compilers without the attributes
// (gcc builds the same code unannotated).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AMUSE_TSA(x) __attribute__((x))
#endif
#endif
#ifndef AMUSE_TSA
#define AMUSE_TSA(x)  // not clang (or too old): annotations compile away
#endif

#define AMUSE_CAPABILITY(x) AMUSE_TSA(capability(x))
#define AMUSE_SCOPED_CAPABILITY AMUSE_TSA(scoped_lockable)
#define AMUSE_GUARDED_BY(x) AMUSE_TSA(guarded_by(x))
#define AMUSE_PT_GUARDED_BY(x) AMUSE_TSA(pt_guarded_by(x))
#define AMUSE_REQUIRES(...) AMUSE_TSA(requires_capability(__VA_ARGS__))
#define AMUSE_EXCLUDES(...) AMUSE_TSA(locks_excluded(__VA_ARGS__))
#define AMUSE_ACQUIRE(...) AMUSE_TSA(acquire_capability(__VA_ARGS__))
#define AMUSE_RELEASE(...) AMUSE_TSA(release_capability(__VA_ARGS__))
#define AMUSE_TRY_ACQUIRE(...) AMUSE_TSA(try_acquire_capability(__VA_ARGS__))
#define AMUSE_RETURN_CAPABILITY(x) AMUSE_TSA(lock_returned(x))
#define AMUSE_NO_THREAD_SAFETY_ANALYSIS AMUSE_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Executor-affinity annotations (scripts/check_affinity.py reads the macro
// text; the clang annotate attribute additionally lands in the AST for the
// libclang backend). Zero runtime cost.
//
//   AMUSE_AFFINITY(label)   this method touches state owned by the `label`
//                           executor and must run on its consumer thread.
//                           Labels used in this tree: core_executor (bus /
//                           proxies / discovery service / cell-side
//                           channels), member_executor (bus client /
//                           discovery agent / SmcMember), owner_executor
//                           (ReliableChannel — used on both sides).
//   AMUSE_RECEIVE_CONTEXT   this function runs on a raw OS thread that is
//                           NOT an executor (e.g. the UDP receive thread).
//                           It may only reach AMUSE_AFFINITY methods
//                           through an Executor::post() hop.
//   AMUSE_EGRESS_CONTEXT    this function is a wire-egress surface callable
//                           from ANY thread (executor consumers, the bench
//                           blast thread, the receive thread sending acks).
//                           Like a receive context it must never touch
//                           executor-owned protocol state: it may only call
//                           down into the socket layer. The affinity checker
//                           walks it as an entry point.
//
// All macros go at the *start* of the declaration:
//   AMUSE_AFFINITY(core_executor) void member_publish(...) override;
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define AMUSE_AFFINITY(label) \
  __attribute__((annotate("amuse::affinity:" #label)))
#define AMUSE_RECEIVE_CONTEXT __attribute__((annotate("amuse::receive_context")))
#define AMUSE_EGRESS_CONTEXT __attribute__((annotate("amuse::egress_context")))
#else
#define AMUSE_AFFINITY(label)
#define AMUSE_RECEIVE_CONTEXT
#define AMUSE_EGRESS_CONTEXT
#endif

namespace amuse {

class CondVar;

/// Capability-annotated mutex. The only sanctioned mutual-exclusion
/// primitive in src/ (invariant I9): declare the guarded fields with
/// AMUSE_GUARDED_BY(mu_) and clang's -Wthread-safety proves every access
/// is under the lock.
class AMUSE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AMUSE_ACQUIRE() { mu_.lock(); }
  void unlock() AMUSE_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over amuse::Mutex (the std::lock_guard / unique_lock
/// replacement). Holds a std::unique_lock internally so CondVar can wait
/// on it; the capability is considered held for the whole scope, which is
/// exactly the condition-variable contract (the wait re-acquires before
/// returning).
class AMUSE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AMUSE_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() AMUSE_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with amuse::Mutex via MutexLock. The caller
/// holds the lock across the wait (temporarily released inside, invisible
/// to — and sound for — the static analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Dur>
  void wait_until(MutexLock& lock,
                  const std::chrono::time_point<Clock, Dur>& deadline) {
    cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace amuse
