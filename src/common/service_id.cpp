#include "common/service_id.hpp"

#include <cstdio>

namespace amuse {

std::string ServiceId::to_string() const {
  if (is_nil()) return "nil";
  if (*this == broadcast()) return "*";
  char buf[32];
  std::uint32_t a = addr();
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (a >> 24) & 0xFF,
                (a >> 16) & 0xFF, (a >> 8) & 0xFF, a & 0xFF, port());
  return buf;
}

}  // namespace amuse
