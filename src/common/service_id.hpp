// 48-bit service identifiers.
//
// The prototype (paper §IV) derives a 48-bit ID for each service from the
// transport's unicast address and port. We keep the same width and the same
// derivation rule (32-bit address || 16-bit port) so IDs remain meaningful
// as "where to send the acknowledgement", while also allowing opaque IDs.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace amuse {

class ServiceId {
 public:
  constexpr ServiceId() = default;
  constexpr explicit ServiceId(std::uint64_t raw) : raw_(raw & kMask) {}

  /// The prototype rule: unicast IPv4 address + OS-assigned port.
  [[nodiscard]] static constexpr ServiceId from_addr_port(std::uint32_t addr,
                                                          std::uint16_t port) {
    return ServiceId((static_cast<std::uint64_t>(addr) << 16) | port);
  }

  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }
  [[nodiscard]] constexpr std::uint32_t addr() const {
    return static_cast<std::uint32_t>(raw_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t port() const {
    return static_cast<std::uint16_t>(raw_ & 0xFFFF);
  }

  [[nodiscard]] constexpr bool is_nil() const { return raw_ == 0; }
  /// Reserved destination meaning "every service in the cell" (broadcast).
  [[nodiscard]] static constexpr ServiceId broadcast() {
    return ServiceId(kMask);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(ServiceId, ServiceId) = default;

  static constexpr std::uint64_t kMask = 0xFFFFFFFFFFFFULL;

 private:
  std::uint64_t raw_ = 0;
};

}  // namespace amuse

template <>
struct std::hash<amuse::ServiceId> {
  std::size_t operator()(amuse::ServiceId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw());
  }
};
