#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace amuse {

double Rng::normal() {
  // Box–Muller; discard the second variate to keep the generator's state
  // trajectory independent of call interleavings.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace amuse
