// SHA-256 and HMAC-SHA256, self-contained (FIPS 180-4 / RFC 2104).
//
// The discovery service admits devices using "authentication specific to the
// application" (paper §II-B). Our admission handshake is a challenge/response
// keyed on a pre-shared cell key; HMAC-SHA256 is the MAC. Implemented from
// scratch because the reproduction has no runtime dependencies.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace amuse {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalises and returns the digest; the object must be reset() before
  /// further use.
  [[nodiscard]] Digest256 finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest256 hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 per RFC 2104. Keys longer than the block size are hashed
/// first, shorter ones are zero-padded.
[[nodiscard]] Digest256 hmac_sha256(BytesView key, BytesView message);

/// Constant-time digest comparison (avoids timing side channels in the
/// admission handshake).
[[nodiscard]] bool digest_equal(const Digest256& a, const Digest256& b);

}  // namespace amuse
