#include "common/bytes.hpp"

#include <bit>

namespace amuse {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u48(std::uint64_t v) {
  for (int shift = 40; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

void Writer::blob16(BytesView v) {
  if (v.size() > 0xFFFF) {
    throw std::length_error("blob16: payload exceeds 64 KiB");
  }
  u16(static_cast<std::uint16_t>(v.size()));
  raw(v);
}

void Writer::blob32(BytesView v) {
  if (v.size() > 0xFFFFFFFFULL) {
    throw std::length_error("blob32: payload exceeds 4 GiB");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void Writer::str(std::string_view v) {
  blob16(BytesView(reinterpret_cast<const std::uint8_t*>(v.data()), v.size()));
}

void Writer::patch_u16(std::size_t pos, std::uint16_t v) {
  if (pos + 2 > buf_.size()) {
    throw std::out_of_range("patch_u16: position past end of buffer");
  }
  buf_[pos] = static_cast<std::uint8_t>(v >> 8);
  buf_[pos + 1] = static_cast<std::uint8_t>(v);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw DecodeError("truncated buffer: need " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos_) +
                      ", have " + std::to_string(data_.size() - pos_));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::uint64_t Reader::u48() {
  need(6);
  std::uint64_t v = 0;
  for (int i = 0; i < 6; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 6;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

BytesView Reader::raw(std::size_t n) {
  need(n);
  BytesView v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

Bytes Reader::blob16() {
  std::size_t n = u16();
  BytesView v = raw(n);
  return Bytes(v.begin(), v.end());
}

Bytes Reader::blob32() {
  std::size_t n = u32();
  BytesView v = raw(n);
  return Bytes(v.begin(), v.end());
}

std::string Reader::str() {
  std::size_t n = u16();
  BytesView v = raw(n);
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string to_hex(BytesView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace amuse
