// Byte-array utilities: the transport boundary of the SMC is raw byte
// arrays (paper §III-D), so every protocol in this codebase serialises
// through the bounds-checked Writer/Reader defined here.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace amuse {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Error thrown when a Reader runs past the end of its buffer or a
/// length prefix is inconsistent. Wire-facing code catches this at the
/// packet boundary and drops the malformed datagram.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width integers (big-endian), length-prefixed strings and
/// blobs to a growing byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// 48-bit value, for ServiceId (paper §IV: 48-bit service IDs).
  void u48(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix.
  void raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }
  /// u16 length prefix + bytes. Throws std::length_error past 64 KiB.
  void blob16(BytesView v);
  /// u32 length prefix + bytes.
  void blob32(BytesView v);
  /// u16 length prefix + UTF-8 bytes.
  void str(std::string_view v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

  /// Patches a previously written u16 at `pos` (used for frame lengths).
  void patch_u16(std::size_t pos, std::uint16_t v);

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian reader over a byte view. All accessors throw
/// DecodeError instead of reading out of bounds.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint64_t u48();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] BytesView raw(std::size_t n);
  [[nodiscard]] Bytes blob16();
  [[nodiscard]] Bytes blob32();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Convenience: copy a string's bytes into a Bytes value.
[[nodiscard]] Bytes to_bytes(std::string_view s);
/// Convenience: interpret bytes as text (for logging/tests).
[[nodiscard]] std::string to_string(BytesView b);
/// Hex dump, lowercase, no separators (for digests in tests/logs).
[[nodiscard]] std::string to_hex(BytesView b);

}  // namespace amuse
