// CRC-32 (IEEE 802.3 polynomial, reflected) used to detect corrupted
// datagrams at the wire layer. Corruption on lossy wireless links is one of
// the failure modes the event bus reliability protocol must survive.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace amuse {

/// One-shot CRC-32 of a buffer.
[[nodiscard]] std::uint32_t crc32(BytesView data);

/// Incremental form: feed `crc` from a previous call (start with 0).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, BytesView data);

}  // namespace amuse
