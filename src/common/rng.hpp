// Deterministic pseudo-random numbers for the simulation.
//
// Every stochastic element (link jitter, loss, sensor noise, alarm episodes)
// draws from a seeded Rng so that simulated experiments are reproducible
// bit-for-bit across runs — a requirement for regression-testing the
// delivery-semantics invariants under randomised fault injection.
#pragma once

#include <cstdint>
#include <limits>

namespace amuse {

/// PCG32 (O'Neill 2014): small, fast, statistically strong enough for
/// simulation workloads, and trivially seedable per-stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) {
    state_ = 0;
    inc_ = (stream << 1U) | 1U;
    (void)next_u32();
    state_ += seed;
    (void)next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t bounded(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint32_t threshold = (0U - bound) % bound;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_u64() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u32()) /
           (static_cast<double>(std::numeric_limits<std::uint32_t>::max()) + 1.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic, good enough for jitter models).
  double normal();
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (inter-arrival times).
  double exponential(double mean);

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 1;
};

}  // namespace amuse
