#include "discovery/membership.hpp"

namespace amuse {

void Membership::admit(const MemberInfo& info, TimePoint now) {
  MemberRecord rec;
  rec.info = info;
  rec.state = MemberState::kActive;
  rec.joined_at = now;
  rec.last_heard = now;
  members_.insert_or_assign(info.id, rec);
}

bool Membership::touch(ServiceId id, TimePoint now) {
  auto it = members_.find(id);
  if (it == members_.end()) return false;
  it->second.last_heard = now;
  if (it->second.state == MemberState::kSuspect) {
    it->second.state = MemberState::kActive;
    return true;
  }
  return false;
}

void Membership::mark_suspect(ServiceId id) {
  auto it = members_.find(id);
  if (it != members_.end()) it->second.state = MemberState::kSuspect;
}

std::optional<MemberRecord> Membership::remove(ServiceId id) {
  auto it = members_.find(id);
  if (it == members_.end()) return std::nullopt;
  MemberRecord rec = std::move(it->second);
  members_.erase(it);
  return rec;
}

Membership::Sweep Membership::sweep(TimePoint now, Duration suspect_after,
                                    Duration purge_after) const {
  Sweep result;
  for (const auto& [id, rec] : members_) {
    Duration silence = now - rec.last_heard;
    if (silence >= purge_after) {
      result.to_purge.push_back(rec.info);
    } else if (silence >= suspect_after &&
               rec.state == MemberState::kActive) {
      result.newly_suspect.push_back(rec.info);
    }
  }
  return result;
}

const MemberRecord* Membership::find(ServiceId id) const {
  auto it = members_.find(id);
  return it == members_.end() ? nullptr : &it->second;
}

std::vector<MemberRecord> Membership::all() const {
  std::vector<MemberRecord> out;
  out.reserve(members_.size());
  for (const auto& [id, rec] : members_) out.push_back(rec);
  return out;
}

}  // namespace amuse
