// DiscoveryAgent: the device-side half of the discovery protocol.
//
// Listens for cell beacons on the agreed broadcast channel, runs the
// authenticated join handshake, then keeps the membership alive with
// heartbeats. If beacons and unicast traffic go silent long enough the
// agent assumes it is out of range and reverts to searching; when the cell
// is heard again it re-joins with a fresh session — the bus sees that as a
// purge-then-new-member cycle (or a masked transient, if the silence was
// shorter than the cell's purge timeout).
#pragma once

#include <functional>
#include <memory>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "net/transport.hpp"
#include "sim/executor.hpp"
#include "wire/packet.hpp"

namespace amuse {

struct DiscoveryAgentConfig {
  std::string cell_name = "smc";  // only join this cell
  Bytes pre_shared_key;
  std::string device_type = "service";
  std::string role = "service";
  /// Give up on a handshake step and wait for the next beacon after this.
  Duration handshake_timeout = seconds(2);
  /// Declare the cell lost after this much total silence.
  Duration cell_lost_after = seconds(5);
  std::uint64_t seed = 0xa9e27;
  /// When false the owner feeds handle_datagram() itself (endpoint muxing).
  bool install_receive_handler = true;
  /// Honour promotion epochs in beacons (DESIGN.md §13): never follow a
  /// beacon whose epoch is below the highest seen (a deposed core still
  /// beaconing after a split brain), and re-home immediately when a
  /// higher-epoch core replaces the one we are joined to. Off = legacy
  /// behaviour (epochs ignored) — the torture suite's sensitivity proof
  /// reverts exactly this flag.
  bool fence_epochs = true;
};

class DiscoveryAgent {
 public:
  /// joined(bus_id, session): the member may now construct its BusClient.
  using JoinedFn = std::function<void(ServiceId bus, std::uint32_t session)>;
  using LeftFn = std::function<void()>;

  DiscoveryAgent(Executor& executor, std::shared_ptr<Transport> transport,
                 DiscoveryAgentConfig config);
  ~DiscoveryAgent();

  DiscoveryAgent(const DiscoveryAgent&) = delete;
  DiscoveryAgent& operator=(const DiscoveryAgent&) = delete;

  /// Begins listening for beacons (joins automatically when one is heard).
  AMUSE_AFFINITY(member_executor) void start();
  /// Graceful exit: sends LEAVE and stops heartbeats.
  AMUSE_AFFINITY(member_executor) void leave();

  void set_on_joined(JoinedFn fn) { on_joined_ = std::move(fn); }
  void set_on_left(LeftFn fn) { on_left_ = std::move(fn); }
  /// Canonical digest of the quench table the member already holds (all
  /// zero = none); appended to the JOIN_RESP so an unchanged core skips the
  /// re-push on re-home (DESIGN.md §13).
  using QuenchDigestFn = std::function<Digest256()>;
  void set_quench_digest_provider(QuenchDigestFn fn) {
    quench_digest_ = std::move(fn);
  }

  AMUSE_AFFINITY(member_executor)
  void handle_datagram(ServiceId src, BytesView data);

  enum class State { kIdle, kSearching, kWaitChallenge, kWaitAccept, kJoined };
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool joined() const { return state_ == State::kJoined; }
  [[nodiscard]] ServiceId bus_id() const { return bus_id_; }
  /// Session the cell reserved for this admission's proxy channel (from the
  /// JoinAccept; 0 when the cell predates the field or has none wired). The
  /// member's receiver uses it as its minimum acceptable peer session.
  [[nodiscard]] std::uint32_t bus_channel_session() const {
    return bus_channel_session_;
  }
  /// Highest promotion epoch heard so far (0 until an epoch-stamped beacon
  /// or JoinAccept arrives).
  [[nodiscard]] std::uint64_t max_epoch() const { return max_epoch_; }
  [[nodiscard]] ServiceId id() const { return transport_->local_id(); }

  struct Stats {
    std::uint64_t beacons_heard = 0;
    std::uint64_t join_attempts = 0;
    std::uint64_t joins = 0;
    std::uint64_t rejections = 0;
    std::uint64_t cell_losses = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t stale_beacons_ignored = 0;  // fenced (epoch below max)
    std::uint64_t rehomes = 0;  // left a live join for a higher-epoch core
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  AMUSE_AFFINITY(member_executor) void on_beacon(const Packet& p);
  AMUSE_AFFINITY(member_executor) void send_join_request();
  AMUSE_AFFINITY(member_executor) void send_heartbeat();
  void arm_handshake_timeout();
  void arm_loss_check();
  void declare_lost();

  Executor& executor_;
  std::shared_ptr<Transport> transport_;
  DiscoveryAgentConfig config_;
  Rng rng_;
  State state_ = State::kIdle;
  ServiceId discovery_id_;
  ServiceId bus_id_;
  Duration heartbeat_interval_ = seconds(1);
  std::uint32_t session_ = 0;  // fresh per join
  std::uint32_t bus_channel_session_ = 0;  // reserved proxy session
  std::uint64_t max_epoch_ = 0;  // highest promotion epoch heard
  TimePoint last_heard_{};
  JoinedFn on_joined_;
  LeftFn on_left_;
  QuenchDigestFn quench_digest_;
  TimerId heartbeat_timer_ = kNoTimer;
  TimerId handshake_timer_ = kNoTimer;
  TimerId loss_timer_ = kNoTimer;
  Stats stats_;
};

}  // namespace amuse
