// Membership table for the discovery service.
//
// Tracks every admitted member's liveness. Two thresholds implement the
// paper's "mask transient disconnections" requirement (§II-B): a member
// unheard for `suspect_after` becomes SUSPECT (delivery to it will stall
// and queue, but it is still a member — "a nurse leaves the room for a
// short period of time before returning"); only after `purge_after` of
// silence is it purged and a "Purge Member" event raised.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bus/bus_port.hpp"
#include "common/annotations.hpp"
#include "sim/time.hpp"

namespace amuse {

enum class MemberState { kActive, kSuspect };

struct MemberRecord {
  MemberInfo info;
  MemberState state = MemberState::kActive;
  TimePoint joined_at{};
  TimePoint last_heard{};
};

class Membership {
 public:
  /// Admits (or re-admits) a member.
  AMUSE_AFFINITY(core_executor) void admit(const MemberInfo& info,
                                           TimePoint now);
  /// Records liveness evidence (heartbeat, join, any packet).
  /// Returns true if the member was SUSPECT and has now recovered.
  AMUSE_AFFINITY(core_executor) bool touch(ServiceId id, TimePoint now);
  /// Flips a member to SUSPECT (after the sweep reported it).
  AMUSE_AFFINITY(core_executor) void mark_suspect(ServiceId id);
  /// Removes a member (graceful leave or purge). Returns its record.
  AMUSE_AFFINITY(core_executor)
  std::optional<MemberRecord> remove(ServiceId id);

  struct Sweep {
    std::vector<MemberInfo> newly_suspect;
    std::vector<MemberInfo> to_purge;
  };
  /// Applies the silence thresholds; purge candidates are NOT removed here
  /// (the caller purges them one by one so events and callbacks stay in
  /// step with the table).
  [[nodiscard]] Sweep sweep(TimePoint now, Duration suspect_after,
                            Duration purge_after) const;

  [[nodiscard]] bool contains(ServiceId id) const {
    return members_.contains(id);
  }
  [[nodiscard]] const MemberRecord* find(ServiceId id) const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::vector<MemberRecord> all() const;

 private:
  std::unordered_map<ServiceId, MemberRecord> members_;
};

}  // namespace amuse
