#include "discovery/discovery_service.hpp"

#include "common/log.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {
const Logger kLog("discovery");

Event member_event(const char* type, const MemberInfo& info,
                   const std::string& reason = "") {
  Event e(type);
  e.set("member", static_cast<std::int64_t>(info.id.raw()));
  e.set("device_type", info.device_type);
  e.set("role", info.role);
  if (!reason.empty()) e.set("reason", reason);
  return e;
}

}  // namespace

Digest256 admission_mac(BytesView psk, BytesView nonce, ServiceId device,
                        std::string_view device_type) {
  Writer w;
  w.raw(nonce);
  w.u48(device.raw());
  w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(device_type.data()),
                  device_type.size()));
  return hmac_sha256(psk, w.bytes());
}

DiscoveryService::DiscoveryService(Executor& executor,
                                   std::shared_ptr<Transport> transport,
                                   ServiceId bus_id, DiscoveryConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      bus_id_(bus_id),
      config_(std::move(config)),
      rng_(config_.seed, /*stream=*/0xd15c) {
  transport_->set_receive_handler([this](ServiceId src, BytesView data) {
    on_datagram(src, data);
  });
}

DiscoveryService::~DiscoveryService() {
  stop();
  transport_->set_receive_handler(nullptr);
}

void DiscoveryService::start() {
  if (running_) return;
  running_ = true;
  send_beacon();
  sweep_timer_ = executor_.schedule_after(config_.sweep_interval, [this] {
    sweep_timer_ = kNoTimer;
    sweep();
  });
}

void DiscoveryService::stop() {
  running_ = false;
  executor_.cancel(beacon_timer_);
  executor_.cancel(sweep_timer_);
  beacon_timer_ = kNoTimer;
  sweep_timer_ = kNoTimer;
}

void DiscoveryService::send_beacon() {
  if (!running_) return;
  Packet p;
  p.type = PacketType::kBeacon;
  p.src = id();
  p.dst = ServiceId::broadcast();
  Writer w;
  w.str(config_.cell_name);
  w.u48(bus_id_.raw());
  // Trailing, back-compat: promotion epoch. Fencing agents never follow
  // the cell backwards across a promotion; legacy agents ignore it.
  w.u64(config_.epoch);
  p.payload = std::move(w).take();
  transport_->broadcast(p.encode());
  ++stats_.beacons_sent;
  beacon_timer_ = executor_.schedule_after(config_.beacon_interval, [this] {
    beacon_timer_ = kNoTimer;
    send_beacon();
  });
}

void DiscoveryService::on_datagram(ServiceId src, BytesView data) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "DiscoveryService::on_datagram");
  std::optional<Packet> packet = Packet::decode(data);
  if (!packet) return;
  // Any authenticated member traffic counts as liveness evidence.
  if (membership_.contains(src) && packet->type != PacketType::kJoinRequest) {
    if (membership_.touch(src, executor_.now())) {
      ++stats_.recoveries;
      const MemberRecord* rec = membership_.find(src);
      if (rec) {
        kLog.debug("member ", src.to_string(), " recovered");
        if (observer_.on_recovered) observer_.on_recovered(rec->info);
        if (on_recovered_) on_recovered_(rec->info);
        if (publish_) {
          publish_(member_event(smc_events::kRecoveredMember, rec->info));
        }
      }
    }
  }

  try {
    switch (packet->type) {
      case PacketType::kJoinRequest: {
        ++stats_.join_requests;
        // (Re-)challenge; idempotent under datagram loss and duplication.
        Bytes nonce(16);
        for (auto& b : nonce) b = static_cast<std::uint8_t>(rng_.bounded(256));
        pending_[src] =
            PendingJoin{nonce, executor_.now() + config_.challenge_ttl};
        Packet out;
        out.type = PacketType::kJoinChallenge;
        out.src = id();
        out.dst = src;
        Writer w;
        w.blob16(nonce);
        out.payload = std::move(w).take();
        transport_->send(src, out.encode());
        ++stats_.challenges_sent;
        break;
      }
      case PacketType::kJoinResponse: {
        auto pit = pending_.find(src);
        if (pit == pending_.end() || pit->second.expires < executor_.now()) {
          pending_.erase(src);
          break;  // no live challenge: ignore (device will retry)
        }
        Reader r(packet->payload);
        std::string device_type = r.str();
        std::string role = r.str();
        Bytes mac = r.blob16();
        // Trailing, back-compat: digest of the quench table the member
        // already holds (all zero / absent = none).
        Digest256 quench_digest{};
        if (r.remaining() >= quench_digest.size()) {
          BytesView held = r.raw(quench_digest.size());
          std::copy(held.begin(), held.end(), quench_digest.begin());
        }
        Digest256 want = admission_mac(config_.pre_shared_key,
                                       pit->second.nonce, src, device_type);
        Digest256 got{};
        bool size_ok = mac.size() == got.size();
        if (size_ok) std::copy(mac.begin(), mac.end(), got.begin());
        if (!size_ok || !digest_equal(want, got)) {
          ++stats_.joins_rejected;
          Packet out;
          out.type = PacketType::kJoinReject;
          out.src = id();
          out.dst = src;
          Writer w;
          w.str("authentication failed");
          out.payload = std::move(w).take();
          transport_->send(src, out.encode());
          pending_.erase(pit);
          kLog.warn("join rejected for ", src.to_string(),
                    ": authentication failed");
          break;
        }
        pending_.erase(pit);
        admit(src, device_type, role, quench_digest);
        break;
      }
      case PacketType::kHeartbeat:
        if (membership_.contains(src)) {
          ++stats_.heartbeats;
        } else {
          // The device believes it is a member but was purged while it was
          // unreachable. Without a notice it would stay deaf (its bus
          // traffic is dropped) until its own loss timer; tell it to
          // re-join instead.
          ++stats_.evictions_notified;
          Packet out;
          out.type = PacketType::kJoinReject;
          out.src = id();
          out.dst = src;
          Writer w;
          w.str("not a member");
          out.payload = std::move(w).take();
          transport_->send(src, out.encode());
        }
        break;  // touch already happened above
      case PacketType::kLeave: {
        ++stats_.leaves;
        auto rec = membership_.find(src);
        if (rec) {
          MemberInfo info = rec->info;
          do_purge(info, "leave");
        }
        break;
      }
      case PacketType::kBeacon: {
        // A rival core beaconing our cell's name with a higher epoch: we
        // were deposed while partitioned (a standby promoted past us).
        // Step down exactly once — stop beaconing and let the composition
        // fence the bus (DESIGN.md §13).
        if (!config_.step_down_on_rival || !running_ || src == id()) break;
        Reader r(packet->payload);
        std::string cell = r.str();
        (void)r.u48();  // rival's bus id
        std::uint64_t epoch = r.remaining() >= 8 ? r.u64() : 0;
        if (cell != config_.cell_name || epoch <= config_.epoch) break;
        ++stats_.rival_step_downs;
        deposed_ = true;
        kLog.warn("core deposed by rival ", src.to_string(), " at epoch ",
                  std::to_string(epoch), "; stepping down");
        stop();
        if (on_deposed_) on_deposed_();
        break;
      }
      default:
        break;  // beacons from other cells, reliable traffic, etc.
    }
  } catch (const DecodeError& e) {
    kLog.warn("malformed discovery packet from ", src.to_string(), ": ",
              e.what());
  }
}

void DiscoveryService::admit(ServiceId device, const std::string& device_type,
                             const std::string& role,
                             const Digest256& quench_digest) {
  MemberInfo info{device, device_type, role, quench_digest};
  bool rejoin = membership_.contains(device);
  membership_.admit(info, executor_.now());
  ++stats_.joins_accepted;

  Packet out;
  out.type = PacketType::kJoinAccept;
  out.src = id();
  out.dst = device;
  Writer w;
  w.u64(static_cast<std::uint64_t>(config_.heartbeat_interval.count()));
  w.u64(static_cast<std::uint64_t>(config_.purge_after.count()));
  w.u48(bus_id_.raw());
  // The session the member's new proxy channel will speak: the device's
  // receiver uses it as a floor, rejecting stale frames from any earlier
  // proxy incarnation that race the rejoin. 0 = no reservation wired.
  w.u32(session_provider_ ? session_provider_(device) : 0);
  // Trailing, back-compat: promotion epoch — raises the member's fence so
  // a deposed predecessor's beacons are ignored after this admission.
  w.u64(config_.epoch);
  out.payload = std::move(w).take();
  transport_->send(device, out.encode());

  kLog.info("member ", device.to_string(), " admitted (", device_type,
            rejoin ? ", rejoin)" : ")");
  if (observer_.on_admit) observer_.on_admit(info, rejoin);
  if (on_new_member_) on_new_member_(info);
  if (publish_) publish_(member_event(smc_events::kNewMember, info));
}

void DiscoveryService::purge(ServiceId id_to_purge,
                             const std::string& reason) {
  const MemberRecord* rec = membership_.find(id_to_purge);
  if (!rec) return;
  MemberInfo info = rec->info;
  do_purge(info, reason);
}

void DiscoveryService::do_purge(const MemberInfo& info,
                                const std::string& reason) {
  membership_.remove(info.id);
  ++stats_.purges;
  kLog.info("member ", info.id.to_string(), " purged (", reason, ")");
  if (observer_.on_purge) observer_.on_purge(info, reason);
  if (on_purge_) on_purge_(info.id);
  if (publish_) {
    publish_(member_event(smc_events::kPurgeMember, info, reason));
  }
}

void DiscoveryService::sweep() {
  if (!running_) return;
  TimePoint now = executor_.now();

  // Expire stale half-open joins.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.expires < now) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  Membership::Sweep result =
      membership_.sweep(now, config_.suspect_after, config_.purge_after);
  for (const MemberInfo& info : result.newly_suspect) {
    ++stats_.suspects;
    membership_.mark_suspect(info.id);
    kLog.debug("member ", info.id.to_string(), " suspect");
    if (observer_.on_suspect) observer_.on_suspect(info);
    if (on_suspect_) on_suspect_(info);
    if (publish_) publish_(member_event(smc_events::kSuspectMember, info));
  }
  for (const MemberInfo& info : result.to_purge) {
    do_purge(info, "timeout");
  }

  sweep_timer_ = executor_.schedule_after(config_.sweep_interval, [this] {
    sweep_timer_ = kNoTimer;
    sweep();
  });
}

}  // namespace amuse
