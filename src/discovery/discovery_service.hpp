// The discovery service (§II-B).
//
// Runs beside the event bus on the cell's core host, on its *own* transport
// endpoint: "the discovery protocol does not use the event bus for
// monitoring group membership" — it only *informs* the cell of membership
// changes by publishing "New Member" / "Purge Member" events.
//
// Protocol (all unreliable datagrams; every step idempotent):
//   service --broadcast--> BEACON {cell, bus_id}          every beacon_interval
//   device  ------------> JOIN_REQ {device_type, role}
//   service ------------> JOIN_CHAL {nonce}
//   device  ------------> JOIN_RESP {device_type, role, hmac}
//   service ------------> JOIN_ACCEPT {heartbeat, purge_after, bus_id,
//                                      channel_session}
//                          (or JOIN_REJECT {reason})
//   device  ------------> HEARTBEAT                        every heartbeat
//   device  ------------> LEAVE                            graceful exit
//
// Admission is authenticated with HMAC-SHA256 over (nonce ‖ device-id ‖
// device_type) keyed by the cell's pre-shared key ("employing
// authentication specific to the application").
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "discovery/membership.hpp"
#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

/// Event types the discovery service publishes onto the bus.
namespace smc_events {
inline constexpr const char* kNewMember = "smc.member.new";
inline constexpr const char* kPurgeMember = "smc.member.purge";
inline constexpr const char* kSuspectMember = "smc.member.suspect";
inline constexpr const char* kRecoveredMember = "smc.member.recovered";
}  // namespace smc_events

/// Passive instrumentation taps on the membership lifecycle, fired *in
/// addition to* the single-consumer set_on_* callbacks the SMC composition
/// owns. The torture harness's oracle listens here for purge/rejoin edges
/// (with reasons and rejoin flags) without stealing the cell's wiring.
struct DiscoveryObserver {
  /// `rejoin` is true when the id was already a member (a re-admission).
  std::function<void(const MemberInfo&, bool rejoin)> on_admit;
  std::function<void(const MemberInfo&, const std::string& reason)> on_purge;
  std::function<void(const MemberInfo&)> on_suspect;
  std::function<void(const MemberInfo&)> on_recovered;
};

struct DiscoveryConfig {
  std::string cell_name = "smc";
  Bytes pre_shared_key;
  Duration beacon_interval = seconds(1);
  /// Device heartbeat period handed out in JOIN_ACCEPT.
  Duration heartbeat_interval = seconds(1);
  /// Silence before a member is suspected (transient-disconnect masking).
  Duration suspect_after = seconds(3);
  /// Silence before a "Purge Member" event is launched (§VI scenario).
  Duration purge_after = seconds(10);
  /// Membership sweep cadence.
  Duration sweep_interval = milliseconds(500);
  /// Challenge lifetime for half-open joins.
  Duration challenge_ttl = seconds(5);
  std::uint64_t seed = 0x5eed;
  /// Promotion epoch stamped into beacons and JoinAccepts (trailing,
  /// back-compat fields). 0 = legacy cell, no HA fencing. A promoted
  /// standby runs at its predecessor's epoch + 1.
  std::uint64_t epoch = 0;
  /// Step down (stop beaconing, fire on_deposed) when a rival core beacons
  /// this cell's name with a higher epoch — the split-brain resolution of
  /// DESIGN.md §13. Off = legacy behaviour; the torture suite's
  /// sensitivity proof reverts exactly this flag.
  bool step_down_on_rival = false;
};

/// Builds the admission MAC: HMAC-SHA256(psk, nonce ‖ id(48-bit BE) ‖ type).
[[nodiscard]] Digest256 admission_mac(BytesView psk, BytesView nonce,
                                      ServiceId device, std::string_view
                                      device_type);

class DiscoveryService {
 public:
  using NewMemberFn = std::function<void(const MemberInfo&)>;
  using PurgeMemberFn = std::function<void(ServiceId)>;
  using MemberStateFn = std::function<void(const MemberInfo&)>;
  /// Publishes a membership event onto the bus (wired to
  /// EventBus::publish_local by the SMC composition).
  using PublishFn = std::function<void(Event)>;
  /// Reserves the reliable-channel session the member's new proxy will use
  /// (wired to EventBus::reserve_channel_session by the SMC composition),
  /// so the JoinAccept can tell the device which session to expect and its
  /// receiver can reject stale frames from earlier proxy incarnations.
  using SessionFn = std::function<std::uint32_t(ServiceId)>;

  DiscoveryService(Executor& executor, std::shared_ptr<Transport> transport,
                   ServiceId bus_id, DiscoveryConfig config);
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Starts beaconing and membership sweeps.
  AMUSE_AFFINITY(core_executor) void start();
  AMUSE_AFFINITY(core_executor) void stop();

  void set_on_new_member(NewMemberFn fn) { on_new_member_ = std::move(fn); }
  void set_on_purge_member(PurgeMemberFn fn) { on_purge_ = std::move(fn); }
  void set_on_suspect(MemberStateFn fn) { on_suspect_ = std::move(fn); }
  void set_on_recovered(MemberStateFn fn) { on_recovered_ = std::move(fn); }
  void set_publisher(PublishFn fn) { publish_ = std::move(fn); }
  void set_session_provider(SessionFn fn) {
    session_provider_ = std::move(fn);
  }
  /// Instrumentation tap (see DiscoveryObserver); independent of the
  /// set_on_* wiring above.
  void set_observer(DiscoveryObserver observer) {
    observer_ = std::move(observer);
  }
  /// Fired once when a rival core with a higher epoch deposes this one
  /// (step_down_on_rival only). The SMC composition wires it to
  /// EventBus::step_down().
  void set_on_deposed(std::function<void()> fn) {
    on_deposed_ = std::move(fn);
  }
  /// True once a rival's higher epoch has deposed this core.
  [[nodiscard]] bool deposed() const { return deposed_; }

  /// Administrative removal (e.g. a policy decision), same path as timeout.
  AMUSE_AFFINITY(core_executor)
  void purge(ServiceId id, const std::string& reason);

  [[nodiscard]] const Membership& membership() const { return membership_; }
  [[nodiscard]] ServiceId id() const { return transport_->local_id(); }

  struct Stats {
    std::uint64_t beacons_sent = 0;
    std::uint64_t join_requests = 0;
    std::uint64_t challenges_sent = 0;
    std::uint64_t joins_accepted = 0;
    std::uint64_t joins_rejected = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t suspects = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t purges = 0;
    std::uint64_t leaves = 0;
    std::uint64_t evictions_notified = 0;
    std::uint64_t rival_step_downs = 0;  // deposed by a higher-epoch rival
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct PendingJoin {
    Bytes nonce;
    TimePoint expires;
  };

  AMUSE_AFFINITY(core_executor) void on_datagram(ServiceId src, BytesView data);
  AMUSE_AFFINITY(core_executor) void send_beacon();
  AMUSE_AFFINITY(core_executor) void sweep();
  AMUSE_AFFINITY(core_executor)
  void admit(ServiceId device, const std::string& device_type,
             const std::string& role, const Digest256& quench_digest);
  AMUSE_AFFINITY(core_executor)
  void do_purge(const MemberInfo& info, const std::string& reason);

  Executor& executor_;
  std::shared_ptr<Transport> transport_;
  ServiceId bus_id_;
  DiscoveryConfig config_;
  Rng rng_;
  Membership membership_;
  std::unordered_map<ServiceId, PendingJoin> pending_;
  NewMemberFn on_new_member_;
  PurgeMemberFn on_purge_;
  MemberStateFn on_suspect_;
  MemberStateFn on_recovered_;
  DiscoveryObserver observer_;
  PublishFn publish_;
  SessionFn session_provider_;
  std::function<void()> on_deposed_;
  TimerId beacon_timer_ = kNoTimer;
  TimerId sweep_timer_ = kNoTimer;
  bool running_ = false;
  bool deposed_ = false;
  Stats stats_;
};

}  // namespace amuse
