#include "discovery/discovery_agent.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "discovery/discovery_service.hpp"

namespace amuse {
namespace {
const Logger kLog("discovery.agent");
}

DiscoveryAgent::DiscoveryAgent(Executor& executor,
                               std::shared_ptr<Transport> transport,
                               DiscoveryAgentConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      config_(std::move(config)),
      rng_(config_.seed ^ transport_->local_id().raw(), /*stream=*/0xa9e2) {
  if (config_.install_receive_handler) {
    transport_->set_receive_handler([this](ServiceId src, BytesView data) {
      handle_datagram(src, data);
    });
  }
}

DiscoveryAgent::~DiscoveryAgent() {
  executor_.cancel(heartbeat_timer_);
  executor_.cancel(handshake_timer_);
  executor_.cancel(loss_timer_);
  if (config_.install_receive_handler) {
    transport_->set_receive_handler(nullptr);
  }
}

void DiscoveryAgent::start() {
  if (state_ != State::kIdle) return;
  state_ = State::kSearching;
}

void DiscoveryAgent::leave() {
  if (state_ == State::kJoined) {
    Packet p;
    p.type = PacketType::kLeave;
    p.src = id();
    p.dst = discovery_id_;
    transport_->send(discovery_id_, p.encode());
  }
  executor_.cancel(heartbeat_timer_);
  executor_.cancel(handshake_timer_);
  executor_.cancel(loss_timer_);
  heartbeat_timer_ = handshake_timer_ = loss_timer_ = kNoTimer;
  bool was_joined = state_ == State::kJoined;
  state_ = State::kIdle;
  if (was_joined && on_left_) on_left_();
}

void DiscoveryAgent::handle_datagram(ServiceId src, BytesView data) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "DiscoveryAgent::handle_datagram");
  std::optional<Packet> packet = Packet::decode(data);
  if (!packet) return;

  try {
    switch (packet->type) {
      case PacketType::kBeacon:
        on_beacon(*packet);
        break;
      case PacketType::kJoinChallenge: {
        if (state_ != State::kWaitChallenge || src != discovery_id_) break;
        Reader r(packet->payload);
        Bytes nonce = r.blob16();
        Digest256 mac = admission_mac(config_.pre_shared_key, nonce, id(),
                                      config_.device_type);
        Packet out;
        out.type = PacketType::kJoinResponse;
        out.src = id();
        out.dst = discovery_id_;
        Writer w;
        w.str(config_.device_type);
        w.str(config_.role);
        w.blob16(BytesView(mac.data(), mac.size()));
        // Trailing, back-compat: digest of the quench table this member
        // already holds (all zero = none) so an unchanged core skips the
        // re-push. Old services simply ignore the extra bytes.
        Digest256 held = quench_digest_ ? quench_digest_() : Digest256{};
        w.raw(BytesView(held.data(), held.size()));
        out.payload = std::move(w).take();
        transport_->send(discovery_id_, out.encode());
        state_ = State::kWaitAccept;
        arm_handshake_timeout();
        break;
      }
      case PacketType::kJoinAccept: {
        if (state_ != State::kWaitAccept || src != discovery_id_) break;
        Reader r(packet->payload);
        heartbeat_interval_ = Duration(static_cast<std::int64_t>(r.u64()));
        (void)r.u64();  // cell's purge_after: informational
        bus_id_ = ServiceId(r.u48());
        // Session of the proxy channel created for this admission (0 when
        // the cell has no reservation wired): the floor for the member's
        // receiver, shutting out stale frames from earlier incarnations.
        bus_channel_session_ = r.remaining() >= 4 ? r.u32() : 0;
        // Trailing, back-compat: the core's promotion epoch. Raises the
        // fence so a deposed predecessor's beacons are ignored from now on.
        max_epoch_ = std::max(max_epoch_, r.remaining() >= 8 ? r.u64() : 0);
        state_ = State::kJoined;
        last_heard_ = executor_.now();
        session_ = rng_.next_u32() | 1U;  // nonzero
        ++stats_.joins;
        executor_.cancel(handshake_timer_);
        handshake_timer_ = kNoTimer;
        kLog.info(id().to_string(), " joined cell via bus ",
                  bus_id_.to_string());
        send_heartbeat();
        arm_loss_check();
        if (on_joined_) on_joined_(bus_id_, session_);
        break;
      }
      case PacketType::kJoinReject:
        if (state_ == State::kWaitAccept && src == discovery_id_) {
          ++stats_.rejections;
          kLog.warn(id().to_string(), " join rejected");
          state_ = State::kSearching;
          executor_.cancel(handshake_timer_);
          handshake_timer_ = kNoTimer;
        } else if (state_ == State::kJoined && src == discovery_id_) {
          // Eviction notice: the cell purged us while we were unreachable.
          // Fall back to searching and re-join on the next beacon.
          kLog.info(id().to_string(), " evicted by cell; re-joining");
          declare_lost();
        }
        break;
      default:
        break;
    }
  } catch (const DecodeError& e) {
    kLog.warn("malformed discovery packet: ", e.what());
  }
}

void DiscoveryAgent::on_beacon(const Packet& p) {
  Reader r(p.payload);
  std::string cell = r.str();
  ServiceId advertised_bus(r.u48());
  // Trailing, back-compat: promotion epoch (0 = legacy beacon, unfenced).
  std::uint64_t epoch = r.remaining() >= 8 ? r.u64() : 0;
  if (cell != config_.cell_name) return;  // a different SMC's beacon
  ++stats_.beacons_heard;

  if (config_.fence_epochs && epoch != 0 && epoch < max_epoch_) {
    // A deposed core still beaconing (split brain): never follow the cell
    // backwards — its state predates the promotion.
    ++stats_.stale_beacons_ignored;
    return;
  }

  if (state_ == State::kJoined) {
    if (p.src == discovery_id_) {
      // Only the core we are joined to counts as cell liveness; a rival's
      // beacons must not mask the death of ours.
      last_heard_ = executor_.now();
    } else if (config_.fence_epochs && epoch > max_epoch_) {
      // A higher-epoch core beacons for our cell: ours was replaced by a
      // promoted standby. Re-home now instead of waiting out the loss
      // timer on a dead incarnation.
      max_epoch_ = epoch;
      ++stats_.rehomes;
      kLog.info(id().to_string(), " re-homing to promoted core (epoch ",
                std::to_string(epoch), ")");
      executor_.cancel(heartbeat_timer_);
      heartbeat_timer_ = kNoTimer;
      state_ = State::kSearching;
      if (on_left_) on_left_();
      discovery_id_ = p.src;
      bus_id_ = advertised_bus;
      last_heard_ = executor_.now();
      send_join_request();
    }
    return;
  }

  max_epoch_ = std::max(max_epoch_, epoch);
  last_heard_ = executor_.now();
  if (state_ == State::kSearching) {
    discovery_id_ = p.src;
    bus_id_ = advertised_bus;
    send_join_request();
  }
}

void DiscoveryAgent::send_join_request() {
  ++stats_.join_attempts;
  Packet out;
  out.type = PacketType::kJoinRequest;
  out.src = id();
  out.dst = discovery_id_;
  Writer w;
  w.str(config_.device_type);
  w.str(config_.role);
  out.payload = std::move(w).take();
  transport_->send(discovery_id_, out.encode());
  state_ = State::kWaitChallenge;
  arm_handshake_timeout();
}

void DiscoveryAgent::arm_handshake_timeout() {
  executor_.cancel(handshake_timer_);
  handshake_timer_ =
      executor_.schedule_after(config_.handshake_timeout, [this] {
        handshake_timer_ = kNoTimer;
        if (state_ == State::kWaitChallenge ||
            state_ == State::kWaitAccept) {
          // Back to listening; the next beacon restarts the handshake.
          state_ = State::kSearching;
        }
      });
}

void DiscoveryAgent::send_heartbeat() {
  if (state_ != State::kJoined) return;
  Packet p;
  p.type = PacketType::kHeartbeat;
  p.src = id();
  p.dst = discovery_id_;
  transport_->send(discovery_id_, p.encode());
  ++stats_.heartbeats_sent;
  heartbeat_timer_ = executor_.schedule_after(heartbeat_interval_, [this] {
    heartbeat_timer_ = kNoTimer;
    send_heartbeat();
  });
}

void DiscoveryAgent::arm_loss_check() {
  executor_.cancel(loss_timer_);
  loss_timer_ = executor_.schedule_after(config_.cell_lost_after, [this] {
    loss_timer_ = kNoTimer;
    if (state_ != State::kJoined) return;
    if (executor_.now() - last_heard_ >= config_.cell_lost_after) {
      declare_lost();
    } else {
      arm_loss_check();
    }
  });
}

void DiscoveryAgent::declare_lost() {
  ++stats_.cell_losses;
  kLog.info(id().to_string(), " lost contact with cell; searching again");
  executor_.cancel(heartbeat_timer_);
  heartbeat_timer_ = kNoTimer;
  state_ = State::kSearching;
  if (on_left_) on_left_();
}

}  // namespace amuse
