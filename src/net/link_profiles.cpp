#include "net/link_profiles.hpp"

namespace amuse::profiles {

LinkModel usb_ip_link() {
  LinkModel m;
  m.latency_min = microseconds(600);
  m.latency_spread = microseconds(1700);
  m.loss = 0.0;
  m.bandwidth_bps = 575.0 * 1024.0;
  return m;
}

LinkModel wifi_11b_link() {
  LinkModel m;
  m.latency_min = milliseconds(1);
  m.latency_spread = milliseconds(3);
  m.loss = 0.005;
  m.bandwidth_bps = 600.0 * 1024.0;
  return m;
}

LinkModel bluetooth_link() {
  LinkModel m;
  m.latency_min = milliseconds(15);
  m.latency_spread = milliseconds(25);
  m.loss = 0.01;
  m.bandwidth_bps = 80.0 * 1024.0;
  m.bursty = true;
  m.p_good_to_bad = 0.02;
  m.p_bad_to_good = 0.3;
  m.loss_bad = 0.5;
  return m;
}

LinkModel zigbee_link() {
  LinkModel m;
  m.latency_min = milliseconds(5);
  m.latency_spread = milliseconds(10);
  m.loss = 0.02;
  m.bandwidth_bps = 12.0 * 1024.0;
  m.mtu = 1024;  // fragmentation is left to the layer above
  m.bursty = true;
  m.p_good_to_bad = 0.03;
  m.p_bad_to_good = 0.25;
  m.loss_bad = 0.6;
  return m;
}

LinkModel perfect_link() {
  LinkModel m;
  m.latency_min = microseconds(1);
  m.latency_spread = Duration{};
  m.loss = 0.0;
  m.bandwidth_bps = 0.0;  // infinite
  return m;
}

LinkModel lossy_link(double loss) {
  LinkModel m = usb_ip_link();
  m.loss = loss;
  return m;
}

}  // namespace amuse::profiles
