#include "net/sim_network.hpp"

#include <utility>

namespace amuse {

TimePoint SimHost::charge(TimePoint now, Duration cost) {
  if (cpu_.sched_jitter_max > Duration{}) {
    cost += Duration(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(cpu_.sched_jitter_max.count())));
  }
  TimePoint start = std::max(now, cpu_free_);
  cpu_free_ = start + cost;
  busy_accum_ += cost;
  return cpu_free_;
}

void SimTransport::send(ServiceId dst, BytesView data) {
  net_.send_from(*this, dst, data);
}

void SimTransport::broadcast(BytesView data) {
  net_.broadcast_from(*this, data);
}

SimHost& SimNetwork::add_host(std::string name, const CostModel& cpu) {
  hosts_.push_back(std::make_unique<SimHost>(
      std::move(name), cpu, next_addr_++, rng_.next_u64()));
  return *hosts_.back();
}

std::shared_ptr<SimTransport> SimNetwork::create_endpoint(SimHost& host) {
  ServiceId id = ServiceId::from_addr_port(host.addr(), next_port_++);
  auto ep = std::make_shared<SimTransport>(*this, host, id);
  endpoints_[id] = ep;
  return ep;
}

void SimNetwork::set_link(const SimHost& a, const SimHost& b,
                          const LinkModel& m) {
  set_link_oneway(a, b, m);
  set_link_oneway(b, a, m);
}

void SimNetwork::set_link_oneway(const SimHost& from, const SimHost& to,
                                 const LinkModel& m) {
  links_[{&from, &to}] = DirectedLink{m, {}, false};
}

void SimNetwork::update_link(const SimHost& a, const SimHost& b,
                             const LinkModel& m) {
  update_link_oneway(a, b, m);
  update_link_oneway(b, a, m);
}

void SimNetwork::update_link_oneway(const SimHost& from, const SimHost& to,
                                    const LinkModel& m) {
  link_between(from, to).model = m;  // busy_until / bad_state survive
}

const LinkModel& SimNetwork::link_model(const SimHost& from,
                                        const SimHost& to) {
  return link_between(from, to).model;
}

void SimNetwork::set_partition_group(const SimHost& host, int group) {
  if (group == 0) {
    partition_.erase(&host);
  } else {
    partition_[&host] = group;
  }
}

int SimNetwork::partition_group(const SimHost& host) const {
  auto it = partition_.find(&host);
  return it == partition_.end() ? 0 : it->second;
}

void SimNetwork::schedule_fault(TimePoint at,
                                std::function<void(SimNetwork&)> fault) {
  executor_.schedule_at(at, [this, fault = std::move(fault)] { fault(*this); });
}

SimNetwork::DirectedLink& SimNetwork::link_between(const SimHost& from,
                                                   const SimHost& to) {
  auto it = links_.find({&from, &to});
  if (it == links_.end()) {
    it = links_.emplace(std::make_pair(&from, &to),
                        DirectedLink{default_link_, {}, false})
             .first;
  }
  return it->second;
}

bool SimNetwork::roll_loss(DirectedLink& link) {
  const LinkModel& m = link.model;
  if (m.bursty) {
    if (link.bad_state) {
      if (rng_.chance(m.p_bad_to_good)) link.bad_state = false;
    } else {
      if (rng_.chance(m.p_good_to_bad)) link.bad_state = true;
    }
    return rng_.chance(link.bad_state ? m.loss_bad : m.loss);
  }
  return rng_.chance(m.loss);
}

void SimNetwork::send_from(SimTransport& src, ServiceId dst, BytesView data) {
  ++stats_.datagrams_sent;
  stats_.bytes_sent += data.size();
  // Sender pays the CPU cost even when the datagram is later lost.
  TimePoint ready =
      src.host().charge(executor_.now(), src.host().cpu().send_cost(data.size()));

  auto it = endpoints_.find(dst);
  std::shared_ptr<SimTransport> target =
      it != endpoints_.end() ? it->second.lock() : nullptr;
  if (!target) {
    ++stats_.dropped_no_endpoint;
    return;
  }
  transmit(src.host(), target.get(), ready, Bytes(data.begin(), data.end()),
           src.local_id());
}

void SimNetwork::broadcast_from(SimTransport& src, BytesView data) {
  ++stats_.datagrams_sent;
  stats_.bytes_sent += data.size();
  TimePoint ready =
      src.host().charge(executor_.now(), src.host().cpu().send_cost(data.size()));
  // Snapshot live endpoints first: deliveries scheduled below must not see
  // endpoints created by earlier deliveries of this same broadcast.
  std::vector<std::shared_ptr<SimTransport>> targets;
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (auto ep = it->second.lock()) {
      if (ep.get() != &src) targets.push_back(std::move(ep));
      ++it;
    } else {
      it = endpoints_.erase(it);
    }
  }
  for (auto& target : targets) {
    transmit(src.host(), target.get(), ready, Bytes(data.begin(), data.end()),
             src.local_id());
  }
}

void SimNetwork::transmit(SimHost& src_host, SimTransport* dst,
                          TimePoint ready, Bytes data, ServiceId src_id) {
  SimHost& dst_host = dst->host();
  DirectedLink& link = link_between(src_host, dst_host);
  const LinkModel& m = link.model;

  if (data.size() > m.mtu) {
    ++stats_.dropped_mtu;
    return;
  }
  if (!src_host.up() || !dst_host.up()) {
    ++stats_.dropped_down;
    return;
  }
  if (!partition_.empty() &&
      partition_group(src_host) != partition_group(dst_host)) {
    ++stats_.dropped_partition;
    return;
  }
  if (roll_loss(link)) {
    ++stats_.dropped_loss;
    return;
  }

  Duration serialisation{};
  if (m.bandwidth_bps > 0) {
    serialisation = from_seconds(static_cast<double>(data.size()) /
                                 m.bandwidth_bps);
  }
  TimePoint tx_start = std::max(ready, link.busy_until);
  link.busy_until = tx_start + serialisation;

  int copies = rng_.chance(m.dup) ? 2 : 1;
  if (copies == 2) ++stats_.duplicated;

  ServiceId dst_id = dst->local_id();
  for (int i = 0; i < copies; ++i) {
    Duration latency =
        m.latency_min + Duration(static_cast<std::int64_t>(
                            rng_.uniform() *
                            static_cast<double>(m.latency_spread.count())));
    TimePoint arrival = link.busy_until + latency;
    Bytes payload = (i == copies - 1) ? std::move(data) : data;
    executor_.schedule_at(
        arrival, [this, dst_id, src_id, payload = std::move(payload),
                  arrival]() mutable {
          auto it = endpoints_.find(dst_id);
          auto ep = it != endpoints_.end() ? it->second.lock() : nullptr;
          if (!ep || !ep->handler_) {
            ++stats_.dropped_no_endpoint;
            return;
          }
          if (!ep->host().up()) {
            ++stats_.dropped_down;
            return;
          }
          // Receive-side CPU cost: the handler runs when the host gets to it.
          TimePoint done = ep->host().charge(
              arrival, ep->host().cpu().recv_cost(payload.size()));
          executor_.schedule_at(
              done, [this, dst_id, src_id, payload = std::move(payload)]() {
                auto it2 = endpoints_.find(dst_id);
                auto ep2 =
                    it2 != endpoints_.end() ? it2->second.lock() : nullptr;
                if (!ep2 || !ep2->handler_ || !ep2->host().up()) {
                  ++stats_.dropped_no_endpoint;
                  return;
                }
                ++stats_.datagrams_delivered;
                stats_.bytes_delivered += payload.size();
                ep2->handler_(src_id, payload);
              });
        });
  }
}

}  // namespace amuse
