// Simulated datagram network: the reproduction's stand-in for the paper's
// physical testbed (iPAQ PDA ⟷ laptop over USB-IP, later Bluetooth/ZigBee).
//
// Hosts are single-threaded busy servers with a CostModel (hostmodel/);
// directed links have latency, jitter, loss (optionally bursty), duplication
// and finite bandwidth. Everything is driven by a SimExecutor and a seeded
// Rng, so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "hostmodel/cost_model.hpp"
#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

/// One direction of a point-to-point (or shared-medium) link.
struct LinkModel {
  /// Propagation+queueing latency: uniform in [latency_min,
  /// latency_min + latency_spread). Defaults reproduce the paper's USB-IP
  /// link: 0.6 ms min, 2.3 ms max, ≈1.45 ms mean.
  Duration latency_min = microseconds(600);
  Duration latency_spread = microseconds(1700);
  /// Independent drop probability per datagram.
  double loss = 0.0;
  /// Probability a delivered datagram is duplicated.
  double dup = 0.0;
  /// Serialisation bandwidth in bytes/second; <= 0 means infinite.
  /// Default matches the paper's measured ~575 KB/s raw capacity.
  double bandwidth_bps = 575.0 * 1024.0;
  /// Datagrams larger than this are dropped (with a stats count).
  std::size_t mtu = 65507;
  /// Gilbert–Elliott bursty loss. When enabled, `loss` applies in the good
  /// state and `loss_bad` in the bad state.
  bool bursty = false;
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.2;
  double loss_bad = 0.9;
};

/// A simulated machine. Work (packet handling, matching, translation) is
/// serialised through its single CPU; charge() returns the completion time.
class SimHost {
 public:
  SimHost(std::string name, CostModel cpu, std::uint32_t addr,
          std::uint64_t rng_seed)
      : name_(std::move(name)), cpu_(cpu), addr_(addr), rng_(rng_seed) {}

  /// Queues `cost` of CPU work arriving at `now`; returns when it finishes.
  TimePoint charge(TimePoint now, Duration cost);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CostModel& cpu() const { return cpu_; }
  [[nodiscard]] std::uint32_t addr() const { return addr_; }
  [[nodiscard]] Duration busy_time() const { return busy_accum_; }
  [[nodiscard]] bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

 private:
  std::string name_;
  CostModel cpu_;
  std::uint32_t addr_;
  Rng rng_;
  TimePoint cpu_free_{};
  Duration busy_accum_{};
  bool up_ = true;
};

class SimNetwork;

/// Endpoint bound to a host; implements the generic Transport.
class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& net, SimHost& host, ServiceId id)
      : net_(net), host_(host), id_(id) {}

  [[nodiscard]] ServiceId local_id() const override { return id_; }
  void send(ServiceId dst, BytesView data) override;
  void broadcast(BytesView data) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

  [[nodiscard]] SimHost& host() { return host_; }

 private:
  friend class SimNetwork;
  SimNetwork& net_;
  SimHost& host_;
  ServiceId id_;
  ReceiveHandler handler_;
};

class SimNetwork {
 public:
  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_delivered = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_down = 0;
    std::uint64_t dropped_no_endpoint = 0;
    std::uint64_t dropped_mtu = 0;
    std::uint64_t dropped_partition = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;
  };

  SimNetwork(Executor& executor, std::uint64_t seed)
      : executor_(executor), rng_(seed, /*stream=*/0x6e657477) {}

  /// Adds a machine; `cpu` from hostmodel/profiles.hpp.
  SimHost& add_host(std::string name, const CostModel& cpu);

  /// Creates an endpoint on `host`; the id follows the prototype's rule
  /// (host address + OS-chosen port).
  std::shared_ptr<SimTransport> create_endpoint(SimHost& host);

  /// Link model used where no explicit link is set.
  void set_default_link(const LinkModel& m) { default_link_ = m; }
  [[nodiscard]] const LinkModel& default_link() const { return default_link_; }
  /// Sets both directions between two hosts.
  void set_link(const SimHost& a, const SimHost& b, const LinkModel& m);
  /// Sets one direction only.
  void set_link_oneway(const SimHost& from, const SimHost& to,
                       const LinkModel& m);

  // ---- Scripted fault injection (the protocol-torture harness's knobs).

  /// Replaces the model of an existing (or default-materialised) link
  /// *in place*, both directions: unlike set_link, transmission-queue and
  /// Gilbert–Elliott state survive, so a mid-run MTU squeeze or loss change
  /// behaves like a property of the radio environment, not a new link.
  void update_link(const SimHost& a, const SimHost& b, const LinkModel& m);
  void update_link_oneway(const SimHost& from, const SimHost& to,
                          const LinkModel& m);
  /// The model currently governing from→to traffic (default if unset).
  [[nodiscard]] const LinkModel& link_model(const SimHost& from,
                                            const SimHost& to);

  /// Network partitions: hosts in different non-negative groups cannot
  /// exchange datagrams (counted as dropped_partition). Every host starts
  /// in group 0; clear_partitions() returns everyone there.
  void set_partition_group(const SimHost& host, int group);
  [[nodiscard]] int partition_group(const SimHost& host) const;
  void clear_partitions() { partition_.clear(); }

  /// Schedules a timed mutation of the network (link/host/partition
  /// changes) on the driving executor — the unit of a deterministic,
  /// replayable fault schedule.
  void schedule_fault(TimePoint at, std::function<void(SimNetwork&)> fault);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }
  [[nodiscard]] Executor& executor() { return executor_; }

 private:
  friend class SimTransport;

  struct DirectedLink {
    LinkModel model;
    TimePoint busy_until{};
    bool bad_state = false;
  };

  void send_from(SimTransport& src, ServiceId dst, BytesView data);
  void broadcast_from(SimTransport& src, BytesView data);
  /// Transmits one already-CPU-charged datagram over the link and schedules
  /// delivery on the destination endpoint.
  void transmit(SimHost& src_host, SimTransport* dst, TimePoint ready,
                Bytes data, ServiceId src_id);
  DirectedLink& link_between(const SimHost& from, const SimHost& to);
  bool roll_loss(DirectedLink& link);

  Executor& executor_;
  Rng rng_;
  LinkModel default_link_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::unordered_map<ServiceId, std::weak_ptr<SimTransport>> endpoints_;
  std::map<std::pair<const SimHost*, const SimHost*>, DirectedLink> links_;
  std::map<const SimHost*, int> partition_;  // absent = group 0
  Stats stats_;
  std::uint16_t next_port_ = 40'000;
  std::uint32_t next_addr_ = (10u << 24) | 1u;  // 10.0.0.1 …
};

}  // namespace amuse
