// In-process loopback transport: zero-cost, lossless, ordered per sender.
// Used by unit tests that exercise protocol logic without a network model,
// and by components co-located on one device (a proxy talking to a bus in
// the same address space still goes through Transport, per §III-D).
#pragma once

#include <memory>
#include <unordered_map>

#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

class LoopbackNetwork;

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(LoopbackNetwork& net, ServiceId id) : net_(net), id_(id) {}

  [[nodiscard]] ServiceId local_id() const override { return id_; }
  void send(ServiceId dst, BytesView data) override;
  void broadcast(BytesView data) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

 private:
  friend class LoopbackNetwork;
  LoopbackNetwork& net_;
  ServiceId id_;
  ReceiveHandler handler_;
};

class LoopbackNetwork {
 public:
  explicit LoopbackNetwork(Executor& executor) : executor_(executor) {}

  std::shared_ptr<LoopbackTransport> create_endpoint();

  [[nodiscard]] Executor& executor() { return executor_; }

 private:
  friend class LoopbackTransport;
  void deliver(ServiceId src, ServiceId dst, Bytes data);
  void deliver_all(ServiceId src, Bytes data);

  Executor& executor_;
  std::unordered_map<ServiceId, std::weak_ptr<LoopbackTransport>> endpoints_;
  std::uint16_t next_port_ = 50'000;
};

}  // namespace amuse
