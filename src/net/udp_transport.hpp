// Real UDP datagram transport (the prototype configuration of §IV).
//
// - The unicast socket is bound with port 0 so "the operating system is free
//   to choose the port number", and the 48-bit ServiceId is derived from the
//   socket's address and port — exactly the prototype's rule.
// - broadcast() uses a loopback multicast group on a port "known by
//   services" (the prototype's arbitrarily-chosen broadcast port), so
//   several endpoints in one or many processes on a machine all hear
//   discovery beacons.
// - A background thread polls the sockets and posts datagrams onto the
//   owning Executor, keeping all protocol logic single-threaded. That
//   thread is annotated AMUSE_RECEIVE_CONTEXT: scripts/check_affinity.py
//   proves it never calls into executor-owned state except through post().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/annotations.hpp"
#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

struct UdpOptions {
  /// The agreed "discovery" port every service listens on for broadcasts.
  std::uint16_t broadcast_port = 45'999;
  /// Loopback multicast group used to emulate the shared medium.
  const char* multicast_group = "239.255.42.1";
};

/// Snapshot of the transport's wire counters (see stats()).
struct UdpTransportStats {
  std::uint64_t datagrams_sent = 0;      // unicast + broadcast handed to sendto
  std::uint64_t send_failures = 0;       // sendto() returned an error
  std::uint64_t datagrams_received = 0;  // posted to the executor
  std::uint64_t bytes_received = 0;
  std::uint64_t dropped_no_handler = 0;  // arrived with no handler installed
};

class UdpTransport final : public Transport {
 public:
  using Options = UdpOptions;

  /// Opens the sockets (throws std::system_error on failure) and starts the
  /// receive thread. Datagram handlers run on `executor`.
  static std::unique_ptr<UdpTransport> open(Executor& executor,
                                            Options options = Options());

  ~UdpTransport() override;

  [[nodiscard]] ServiceId local_id() const override { return id_; }
  void send(ServiceId dst, BytesView data) override;
  void broadcast(BytesView data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  /// Snapshot of the wire counters. The counters are touched by the
  /// receive thread and by any thread that sends, so they are relaxed
  /// atomics: monotonic totals with no ordering contract between them (a
  /// snapshot taken mid-traffic may see a send counted before its
  /// matching receive, never torn values).
  [[nodiscard]] UdpTransportStats stats() const {
    UdpTransportStats s;
    s.datagrams_sent = datagrams_sent_.load(std::memory_order_relaxed);
    s.send_failures = send_failures_.load(std::memory_order_relaxed);
    s.datagrams_received = datagrams_received_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    s.dropped_no_handler = dropped_no_handler_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  UdpTransport(Executor& executor, int unicast_fd, int multicast_fd,
               ServiceId id, const Options& options);
  /// Body of the background receive thread — not an executor context.
  AMUSE_RECEIVE_CONTEXT void receive_loop();

  Executor& executor_;
  int unicast_fd_;
  int multicast_fd_;
  ServiceId id_;
  Options options_;
  // Current receive handler. set_receive_handler() swaps the shared_ptr
  // under handler_mu_ (callable from any thread); the receive thread takes
  // a snapshot per datagram and posts a weak reference, so a handler that
  // is replaced — or a transport destroyed — before the posted task runs is
  // never invoked, while a handler mid-invoke stays alive through the
  // task's temporary shared_ptr.
  mutable Mutex handler_mu_;
  std::shared_ptr<const ReceiveHandler> handler_ AMUSE_GUARDED_BY(handler_mu_);
  // Hot wire counters: incremented on the receive thread and on whatever
  // threads send. Relaxed atomics by contract — totals only, no ordering.
  std::atomic<std::uint64_t> datagrams_sent_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> datagrams_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> dropped_no_handler_{0};
  std::atomic<bool> stop_{false};
  std::thread receiver_;
};

}  // namespace amuse
