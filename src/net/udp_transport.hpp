// Real UDP datagram transport (the prototype configuration of §IV), rebuilt
// for kernel-rate traffic (DESIGN.md §12).
//
// - The unicast socket is bound with port 0 so "the operating system is free
//   to choose the port number", and the 48-bit ServiceId is derived from the
//   socket's address and port — exactly the prototype's rule.
// - broadcast() uses a loopback multicast group on a port "known by
//   services" (the prototype's arbitrarily-chosen broadcast port), so
//   several endpoints in one or many processes on a machine all hear
//   discovery beacons.
// - A background thread polls the sockets and posts datagrams onto the
//   owning Executor (or, in sharded mode, onto the ExecutorPool shard keyed
//   by the sender's ServiceId), keeping all protocol logic single-threaded
//   per owner. That thread is annotated AMUSE_RECEIVE_CONTEXT:
//   scripts/check_affinity.py proves it never calls into executor-owned
//   state except through post().
//
// Datapath batching: where the platform provides recvmmsg/sendmmsg
// (cmake/NetFeatures.cmake probes; AMUSE_HAVE_MMSG), the receive thread
// harvests up to UdpOptions::recv_batch datagrams per syscall into a ring
// of recycled slot buffers and posts ONE executor task per harvest, and
// send_batch() flushes a whole burst through one sendmmsg. Per-event fixed
// costs (syscall, lock round, wakeup) then amortise across the batch —
// Gryphon's lesson that broker throughput is won or lost in per-message
// fixed costs, applied to the kernel boundary. UdpOptions::batch_io=false
// (or a platform without mmsg) keeps the original one-syscall-per-datagram
// wire behaviour, byte-identical on the wire: batching changes how many
// datagrams move per syscall, never their bytes or per-peer order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

class ExecutorPool;

struct UdpOptions {
  /// The agreed "discovery" port every service listens on for broadcasts.
  std::uint16_t broadcast_port = 45'999;
  /// Loopback multicast group used to emulate the shared medium.
  const char* multicast_group = "239.255.42.1";
  /// Use recvmmsg/sendmmsg batched syscalls where compiled in
  /// (AMUSE_HAVE_MMSG). false forces the legacy per-datagram
  /// recvfrom/sendto path — the bench A/B baseline and the behaviour of
  /// platforms without the mmsg calls.
  bool batch_io = true;
  /// recvmmsg harvest depth: slot buffers acquired per receive syscall.
  /// Values <= 1 behave like the legacy path.
  std::size_t recv_batch = 16;
  /// Requested SO_RCVBUF/SO_SNDBUF for the unicast socket (best-effort; the
  /// kernel clamps to rmem_max/wmem_max). 0 keeps the OS default. A deep
  /// receive buffer is what lets the batched path absorb bursts between
  /// harvests instead of dropping on the socket queue.
  int socket_buffer_bytes = 1 << 22;
};

/// Snapshot of the transport's wire counters (see stats()).
struct UdpTransportStats {
  std::uint64_t datagrams_sent = 0;      // unicast + broadcast handed to the kernel
  std::uint64_t bytes_sent = 0;          // payload bytes of successful sends
  std::uint64_t send_failures = 0;       // sendto()/sendmmsg() reported an error
  std::uint64_t send_syscalls = 0;       // sendto/sendmmsg invocations
  std::uint64_t batches_sent = 0;        // sendmmsg flushes covering >= 2 datagrams
  std::uint64_t datagrams_received = 0;  // posted to the executor
  std::uint64_t bytes_received = 0;
  std::uint64_t recv_syscalls = 0;       // recvfrom/recvmmsg calls returning >= 1 datagram
  std::uint64_t recv_batches = 0;        // executor posts carrying >= 2 datagrams
  std::uint64_t max_recv_batch = 0;      // largest single recvmmsg harvest
  std::uint64_t buffers_recycled = 0;    // receive slots served from the freelist
  std::uint64_t buffers_fresh = 0;       // receive slots newly allocated
  std::uint64_t dropped_no_handler = 0;  // arrived with no handler installed
};

/// Small freelist of fixed-size receive slot buffers. The receive thread
/// acquires slots for each recvmmsg harvest; the executor task that
/// delivered the batch releases them. Shared (via shared_ptr) between the
/// transport and its in-flight delivery tasks, so a task completing after
/// the transport died still has somewhere safe to return its buffers.
class UdpBufferPool {
 public:
  UdpBufferPool(std::size_t slot_bytes, std::size_t max_free)
      : slot_bytes_(slot_bytes), max_free_(max_free) {}

  /// A slot-sized buffer, recycled when the freelist has one.
  [[nodiscard]] Bytes acquire();
  /// Returns a slot to the freelist (freed instead once max_free is held).
  void release(Bytes buffer);

  [[nodiscard]] std::uint64_t recycled() const {
    return recycled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fresh() const {
    return fresh_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t slot_bytes_;
  std::size_t max_free_;
  Mutex mu_;
  std::vector<Bytes> free_ AMUSE_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> fresh_{0};
};

class UdpTransport final : public Transport {
 public:
  using Options = UdpOptions;

  /// Opens the sockets (throws std::system_error on failure) and starts the
  /// receive thread. Datagram handlers run on `executor`.
  static std::unique_ptr<UdpTransport> open(Executor& executor,
                                            Options options = Options());

  /// Sharded mode: datagram batches are posted to `pool.shard_for(src)`, so
  /// each peer's traffic is owned by exactly one pinned shard and per-peer
  /// FIFO is preserved. The installed handler runs concurrently across
  /// shards — it must only touch per-peer state (DESIGN.md §12).
  static std::unique_ptr<UdpTransport> open(ExecutorPool& pool,
                                            Options options = Options());

  ~UdpTransport() override;

  [[nodiscard]] ServiceId local_id() const override { return id_; }
  AMUSE_EGRESS_CONTEXT void send(ServiceId dst, BytesView data) override;
  AMUSE_EGRESS_CONTEXT void send_batch(
      std::span<const Datagram> batch) override;
  AMUSE_EGRESS_CONTEXT void broadcast(BytesView data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  /// Snapshot of the wire counters. The counters are touched by the
  /// receive thread and by any thread that sends, so they are relaxed
  /// atomics: monotonic totals with no ordering contract between them (a
  /// snapshot taken mid-traffic may see a send counted before its
  /// matching receive, never torn values). The documented per-counter
  /// meanings (datagrams per syscall, batch high-water marks) hold exactly
  /// once traffic quiesces.
  [[nodiscard]] UdpTransportStats stats() const {
    UdpTransportStats s;
    s.datagrams_sent = datagrams_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.send_failures = send_failures_.load(std::memory_order_relaxed);
    s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
    s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
    s.datagrams_received = datagrams_received_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    s.recv_syscalls = recv_syscalls_.load(std::memory_order_relaxed);
    s.recv_batches = recv_batches_.load(std::memory_order_relaxed);
    s.max_recv_batch = max_recv_batch_.load(std::memory_order_relaxed);
    s.buffers_recycled = buffers_->recycled();
    s.buffers_fresh = buffers_->fresh();
    s.dropped_no_handler = dropped_no_handler_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  UdpTransport(Executor* executor, ExecutorPool* pool, int unicast_fd,
               int multicast_fd, ServiceId id, const Options& options);

  static std::unique_ptr<UdpTransport> open_impl(Executor* executor,
                                                 ExecutorPool* pool,
                                                 Options options);

  /// One received datagram travelling from the receive thread to its
  /// executor task: the slot buffer is recycled after delivery.
  struct Inbound {
    ServiceId src;
    Bytes buffer;
    std::size_t length = 0;
  };

  /// Body of the background receive thread — not an executor context.
  AMUSE_RECEIVE_CONTEXT void receive_loop();
  /// Drains one readable socket: mmsg harvests when enabled, one legacy
  /// recvfrom otherwise. Runs on the receive thread.
  void drain_fd(int fd);
  bool drain_batched(int fd);
  void drain_legacy(int fd);
  /// Posts one delivery task per destination executor for a harvest,
  /// preserving arrival order per peer. Runs on the receive thread.
  void post_inbound(std::vector<Inbound> items);
  void post_to(Executor& executor, std::vector<Inbound> items);
  void send_burst_mmsg(std::span<const Datagram> batch);

  Executor* executor_;   // single-executor mode (null in sharded mode)
  ExecutorPool* pool_;   // sharded mode (null in single-executor mode)
  int unicast_fd_;
  int multicast_fd_;
  ServiceId id_;
  Options options_;
  std::shared_ptr<UdpBufferPool> buffers_;
  struct RecvScratch;    // mmsg headers reused across harvests (cpp-only)
  std::unique_ptr<RecvScratch> scratch_;
  // Current receive handler. set_receive_handler() swaps the shared_ptr
  // under handler_mu_ (callable from any thread); the receive thread takes
  // a snapshot per harvest and posts a weak reference, so a handler that
  // is replaced — or a transport destroyed — before the posted task runs is
  // never invoked, while a handler mid-invoke stays alive through the
  // task's temporary shared_ptr.
  mutable Mutex handler_mu_;
  std::shared_ptr<const ReceiveHandler> handler_ AMUSE_GUARDED_BY(handler_mu_);
  // Hot wire counters: incremented on the receive thread and on whatever
  // threads send. Relaxed atomics by contract — totals only, no ordering.
  std::atomic<std::uint64_t> datagrams_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> send_syscalls_{0};
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> datagrams_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> recv_syscalls_{0};
  std::atomic<std::uint64_t> recv_batches_{0};
  std::atomic<std::uint64_t> max_recv_batch_{0};
  std::atomic<std::uint64_t> dropped_no_handler_{0};
  std::atomic<bool> stop_{false};
  std::thread receiver_;
};

}  // namespace amuse
