// Real UDP datagram transport (the prototype configuration of §IV).
//
// - The unicast socket is bound with port 0 so "the operating system is free
//   to choose the port number", and the 48-bit ServiceId is derived from the
//   socket's address and port — exactly the prototype's rule.
// - broadcast() uses a loopback multicast group on a port "known by
//   services" (the prototype's arbitrarily-chosen broadcast port), so
//   several endpoints in one or many processes on a machine all hear
//   discovery beacons.
// - A background thread polls the sockets and posts datagrams onto the
//   owning Executor, keeping all protocol logic single-threaded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

struct UdpOptions {
  /// The agreed "discovery" port every service listens on for broadcasts.
  std::uint16_t broadcast_port = 45'999;
  /// Loopback multicast group used to emulate the shared medium.
  const char* multicast_group = "239.255.42.1";
};

class UdpTransport final : public Transport {
 public:
  using Options = UdpOptions;

  /// Opens the sockets (throws std::system_error on failure) and starts the
  /// receive thread. Datagram handlers run on `executor`.
  static std::unique_ptr<UdpTransport> open(Executor& executor,
                                            Options options = Options());

  ~UdpTransport() override;

  [[nodiscard]] ServiceId local_id() const override { return id_; }
  void send(ServiceId dst, BytesView data) override;
  void broadcast(BytesView data) override;
  void set_receive_handler(ReceiveHandler handler) override;

 private:
  UdpTransport(Executor& executor, int unicast_fd, int multicast_fd,
               ServiceId id, const Options& options);
  void receive_loop();

  Executor& executor_;
  int unicast_fd_;
  int multicast_fd_;
  ServiceId id_;
  Options options_;
  // Current receive handler. set_receive_handler() swaps the shared_ptr
  // under handler_mu_ (callable from any thread); the receive thread takes
  // a snapshot per datagram and posts a weak reference, so a handler that
  // is replaced — or a transport destroyed — before the posted task runs is
  // never invoked, while a handler mid-invoke stays alive through the
  // task's temporary shared_ptr.
  mutable std::mutex handler_mu_;
  std::shared_ptr<const ReceiveHandler> handler_;
  std::atomic<bool> stop_{false};
  std::thread receiver_;
};

}  // namespace amuse
