// Link model presets for the transports the paper uses or targets (§IV, §VI):
// the USB-IP PDA⟷laptop link of the prototype, 802.11b WiFi, Bluetooth 1.2
// and ZigBee. The generic transport layer is the paper's argument that only
// these parameters change between deployments.
#pragma once

#include "net/sim_network.hpp"

namespace amuse::profiles {

/// The measured prototype link (§V): latency 0.6–2.3 ms (mean ≈1.45 ms),
/// raw capacity ≈575 KB/s, effectively lossless.
[[nodiscard]] LinkModel usb_ip_link();

/// 802.11b in a home: ~1–4 ms latency, ~600 KB/s effective, light loss.
[[nodiscard]] LinkModel wifi_11b_link();

/// Bluetooth 1.2 ACL: ~15–40 ms latency, ~80 KB/s, moderate bursty loss.
[[nodiscard]] LinkModel bluetooth_link();

/// ZigBee / 802.15.4: ~5–15 ms latency, ~12 KB/s, small MTU, bursty loss.
[[nodiscard]] LinkModel zigbee_link();

/// Idealised link for pure protocol tests: instant, lossless, unbounded.
[[nodiscard]] LinkModel perfect_link();

/// A deliberately bad wireless link for fault-injection tests.
[[nodiscard]] LinkModel lossy_link(double loss);

}  // namespace amuse::profiles
