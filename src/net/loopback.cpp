#include "net/loopback.hpp"

#include <utility>
#include <vector>

namespace amuse {

void LoopbackTransport::send(ServiceId dst, BytesView data) {
  net_.deliver(id_, dst, Bytes(data.begin(), data.end()));
}

void LoopbackTransport::broadcast(BytesView data) {
  net_.deliver_all(id_, Bytes(data.begin(), data.end()));
}

std::shared_ptr<LoopbackTransport> LoopbackNetwork::create_endpoint() {
  // 127.0.0.1:<port>, mirroring the prototype's id-derivation rule.
  ServiceId id = ServiceId::from_addr_port(0x7F000001u, next_port_++);
  auto ep = std::make_shared<LoopbackTransport>(*this, id);
  endpoints_[id] = ep;
  return ep;
}

void LoopbackNetwork::deliver(ServiceId src, ServiceId dst, Bytes data) {
  executor_.post([this, src, dst, data = std::move(data)]() {
    auto it = endpoints_.find(dst);
    auto ep = it != endpoints_.end() ? it->second.lock() : nullptr;
    if (ep && ep->handler_) ep->handler_(src, data);
  });
}

void LoopbackNetwork::deliver_all(ServiceId src, Bytes data) {
  std::vector<ServiceId> targets;
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (it->second.expired()) {
      it = endpoints_.erase(it);
      continue;
    }
    if (it->first != src) targets.push_back(it->first);
    ++it;
  }
  for (ServiceId dst : targets) deliver(src, dst, data);
}

}  // namespace amuse
