#include "net/transport.hpp"

namespace amuse {
Transport::~Transport() = default;
}  // namespace amuse
