// Generic transport layer (paper §III-D).
//
// "Components within the core of the SMC use a generic transport layer …
//  [presenting] recv() and send() calls … the layer returns and accepts
//  arrays of bytes." We keep exactly that boundary: datagrams of bytes,
// unreliable and unordered, addressed by ServiceId (which encodes
// address:port exactly as the prototype derives its 48-bit IDs). Reliability
// is layered on top (wire/ReliableChannel), never assumed here.
//
// Implementations: LoopbackTransport (in-process), SimTransport (simulated
// lossy links, the testbed substitute), UdpTransport (real sockets).
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "common/bytes.hpp"
#include "common/service_id.hpp"

namespace amuse {

class Transport {
 public:
  /// Invoked on the owning executor's thread for each datagram received.
  /// `src` is the sender's transport-level id.
  using ReceiveHandler = std::function<void(ServiceId src, BytesView data)>;

  virtual ~Transport();

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// This endpoint's id — also the service's 48-bit identity (paper §IV).
  [[nodiscard]] virtual ServiceId local_id() const = 0;

  /// Sends one datagram. Fire-and-forget: silently droppable, may arrive
  /// out of order or duplicated depending on the underlying network.
  virtual void send(ServiceId dst, BytesView data) = 0;

  /// One outbound datagram of a burst. The view is non-owning and must stay
  /// alive for the duration of the send_batch() call only.
  struct Datagram {
    ServiceId dst;
    BytesView data;
  };

  /// Sends a burst of datagrams in one call. Semantically identical to
  /// calling send() once per entry, in order — same fire-and-forget
  /// contract, same per-peer FIFO behaviour on transports that preserve
  /// it — but implementations may hand the whole burst to the kernel in
  /// one syscall (UdpTransport uses sendmmsg where available). The default
  /// implementation is the per-datagram loop, so every transport accepts
  /// bursts.
  virtual void send_batch(std::span<const Datagram> batch) {
    for (const Datagram& d : batch) send(d.dst, d.data);
  }

  /// Sends to every endpoint in the local broadcast domain (discovery
  /// beacons use this; the prototype used "an arbitrarily chosen port
  /// number known by services").
  virtual void broadcast(BytesView data) = 0;

  virtual void set_receive_handler(ReceiveHandler handler) = 0;

  /// Largest datagram this transport will carry.
  [[nodiscard]] virtual std::size_t max_datagram() const { return 65507; }
};

}  // namespace amuse
