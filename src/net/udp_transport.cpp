#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace amuse {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(std::uint32_t host_order_addr, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(host_order_addr);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

std::unique_ptr<UdpTransport> UdpTransport::open(Executor& executor,
                                                 Options options) {
  int ufd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (ufd < 0) throw_errno("socket(unicast)");

  // Bind to loopback with port 0: the OS chooses the port (paper §IV).
  sockaddr_in uaddr = make_addr(INADDR_LOOPBACK, 0);
  if (::bind(ufd, reinterpret_cast<sockaddr*>(&uaddr), sizeof(uaddr)) < 0) {
    ::close(ufd);
    throw_errno("bind(unicast)");
  }
  socklen_t len = sizeof(uaddr);
  if (::getsockname(ufd, reinterpret_cast<sockaddr*>(&uaddr), &len) < 0) {
    ::close(ufd);
    throw_errno("getsockname");
  }
  ServiceId id = ServiceId::from_addr_port(ntohl(uaddr.sin_addr.s_addr),
                                           ntohs(uaddr.sin_port));

  int mfd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (mfd < 0) {
    ::close(ufd);
    throw_errno("socket(multicast)");
  }
  int one = 1;
  ::setsockopt(mfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in maddr = make_addr(INADDR_ANY, options.broadcast_port);
  if (::bind(mfd, reinterpret_cast<sockaddr*>(&maddr), sizeof(maddr)) < 0) {
    ::close(ufd);
    ::close(mfd);
    throw_errno("bind(multicast)");
  }
  ip_mreq mreq{};
  mreq.imr_multiaddr.s_addr = inet_addr(options.multicast_group);
  mreq.imr_interface.s_addr = htonl(INADDR_LOOPBACK);
  if (::setsockopt(mfd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) <
      0) {
    ::close(ufd);
    ::close(mfd);
    throw_errno("IP_ADD_MEMBERSHIP");
  }
  // Send our own multicasts over loopback and hear them locally.
  int loop = 1;
  ::setsockopt(ufd, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
  in_addr mcast_if{};
  mcast_if.s_addr = htonl(INADDR_LOOPBACK);
  ::setsockopt(ufd, IPPROTO_IP, IP_MULTICAST_IF, &mcast_if, sizeof(mcast_if));

  return std::unique_ptr<UdpTransport>(
      new UdpTransport(executor, ufd, mfd, id, options));
}

UdpTransport::UdpTransport(Executor& executor, int unicast_fd,
                           int multicast_fd, ServiceId id,
                           const Options& options)
    : executor_(executor),
      unicast_fd_(unicast_fd),
      multicast_fd_(multicast_fd),
      id_(id),
      options_(options),
      receiver_([this] { receive_loop(); }) {}

UdpTransport::~UdpTransport() {
  stop_.store(true);
  receiver_.join();
  ::close(unicast_fd_);
  ::close(multicast_fd_);
  // Drop the handler so datagram tasks still queued on the executor become
  // no-ops (their weak_ptr can no longer lock).
  MutexLock lock(handler_mu_);
  handler_.reset();
}

void UdpTransport::set_receive_handler(ReceiveHandler handler) {
  auto next = handler
                  ? std::make_shared<const ReceiveHandler>(std::move(handler))
                  : std::shared_ptr<const ReceiveHandler>();
  MutexLock lock(handler_mu_);
  handler_ = std::move(next);
}

void UdpTransport::send(ServiceId dst, BytesView data) {
  sockaddr_in addr = make_addr(dst.addr(), dst.port());
  ssize_t sent = ::sendto(unicast_fd_, data.data(), data.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  if (sent < 0) send_failures_.fetch_add(1, std::memory_order_relaxed);
}

void UdpTransport::broadcast(BytesView data) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = inet_addr(options_.multicast_group);
  addr.sin_port = htons(options_.broadcast_port);
  ssize_t sent = ::sendto(unicast_fd_, data.data(), data.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  if (sent < 0) send_failures_.fetch_add(1, std::memory_order_relaxed);
}

void UdpTransport::receive_loop() {
  std::array<pollfd, 2> fds{};
  fds[0] = {unicast_fd_, POLLIN, 0};
  fds[1] = {multicast_fd_, POLLIN, 0};
  Bytes buffer(65536);

  while (!stop_.load()) {
    int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (n <= 0) continue;
    for (pollfd& p : fds) {
      if (!(p.revents & POLLIN)) continue;
      sockaddr_in src{};
      socklen_t slen = sizeof(src);
      ssize_t got = ::recvfrom(p.fd, buffer.data(), buffer.size(), 0,
                               reinterpret_cast<sockaddr*>(&src), &slen);
      if (got < 0) continue;
      ServiceId src_id = ServiceId::from_addr_port(ntohl(src.sin_addr.s_addr),
                                                   ntohs(src.sin_port));
      // A service's own multicasts loop back; the Transport contract is that
      // broadcast() does not deliver to self, so filter them here.
      if (src_id == id_) continue;
      std::weak_ptr<const ReceiveHandler> weak_handler;
      {
        MutexLock lock(handler_mu_);
        if (!handler_) {
          dropped_no_handler_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        weak_handler = handler_;
      }
      datagrams_received_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(static_cast<std::uint64_t>(got),
                                std::memory_order_relaxed);
      Bytes datagram(buffer.begin(), buffer.begin() + got);
      executor_.post(
          [weak_handler, src_id, datagram = std::move(datagram)]() {
            if (auto h = weak_handler.lock(); h && *h) {
              (*h)(src_id, datagram);
            }
          });
    }
  }
}

}  // namespace amuse
