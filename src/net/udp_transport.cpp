#if defined(AMUSE_HAVE_MMSG) && !defined(_GNU_SOURCE)
#define _GNU_SOURCE  // recvmmsg/sendmmsg live behind the GNU feature gate
#endif

#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "sim/executor_pool.hpp"

namespace amuse {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(std::uint32_t host_order_addr, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(host_order_addr);
  addr.sin_port = htons(port);
  return addr;
}

/// Receive slots hold a full UDP datagram so harvests never truncate.
constexpr std::size_t kSlotBytes = 65536;

}  // namespace

Bytes UdpBufferPool::acquire() {
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      Bytes buffer = std::move(free_.back());
      free_.pop_back();
      recycled_.fetch_add(1, std::memory_order_relaxed);
      return buffer;
    }
  }
  fresh_.fetch_add(1, std::memory_order_relaxed);
  return Bytes(slot_bytes_);
}

void UdpBufferPool::release(Bytes buffer) {
  if (buffer.size() != slot_bytes_) buffer.resize(slot_bytes_);
  MutexLock lock(mu_);
  if (free_.size() < max_free_) free_.push_back(std::move(buffer));
}

/// mmsg harvest headers, allocated once and reused by the receive thread
/// across every recvmmsg call (the "reusable ring" of DESIGN.md §12).
struct UdpTransport::RecvScratch {
#if defined(AMUSE_HAVE_MMSG)
  std::vector<mmsghdr> headers;
  std::vector<iovec> iovecs;
  std::vector<sockaddr_in> sources;
#endif
};

std::unique_ptr<UdpTransport> UdpTransport::open(Executor& executor,
                                                 Options options) {
  return open_impl(&executor, nullptr, options);
}

std::unique_ptr<UdpTransport> UdpTransport::open(ExecutorPool& pool,
                                                 Options options) {
  return open_impl(nullptr, &pool, options);
}

std::unique_ptr<UdpTransport> UdpTransport::open_impl(Executor* executor,
                                                      ExecutorPool* pool,
                                                      Options options) {
  int ufd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (ufd < 0) throw_errno("socket(unicast)");

  // Bind to loopback with port 0: the OS chooses the port (paper §IV).
  sockaddr_in uaddr = make_addr(INADDR_LOOPBACK, 0);
  if (::bind(ufd, reinterpret_cast<sockaddr*>(&uaddr), sizeof(uaddr)) < 0) {
    ::close(ufd);
    throw_errno("bind(unicast)");
  }
  socklen_t len = sizeof(uaddr);
  if (::getsockname(ufd, reinterpret_cast<sockaddr*>(&uaddr), &len) < 0) {
    ::close(ufd);
    throw_errno("getsockname");
  }
  ServiceId id = ServiceId::from_addr_port(ntohl(uaddr.sin_addr.s_addr),
                                           ntohs(uaddr.sin_port));
  if (options.socket_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max/wmem_max. Deep socket
    // queues let the batched path absorb bursts between harvests.
    int bytes = options.socket_buffer_bytes;
    ::setsockopt(ufd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
    ::setsockopt(ufd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  }

  int mfd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (mfd < 0) {
    ::close(ufd);
    throw_errno("socket(multicast)");
  }
  int one = 1;
  ::setsockopt(mfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in maddr = make_addr(INADDR_ANY, options.broadcast_port);
  if (::bind(mfd, reinterpret_cast<sockaddr*>(&maddr), sizeof(maddr)) < 0) {
    ::close(ufd);
    ::close(mfd);
    throw_errno("bind(multicast)");
  }
  ip_mreq mreq{};
  mreq.imr_multiaddr.s_addr = inet_addr(options.multicast_group);
  mreq.imr_interface.s_addr = htonl(INADDR_LOOPBACK);
  if (::setsockopt(mfd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) <
      0) {
    ::close(ufd);
    ::close(mfd);
    throw_errno("IP_ADD_MEMBERSHIP");
  }
  // Send our own multicasts over loopback and hear them locally.
  int loop = 1;
  ::setsockopt(ufd, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
  in_addr mcast_if{};
  mcast_if.s_addr = htonl(INADDR_LOOPBACK);
  ::setsockopt(ufd, IPPROTO_IP, IP_MULTICAST_IF, &mcast_if, sizeof(mcast_if));

  return std::unique_ptr<UdpTransport>(
      new UdpTransport(executor, pool, ufd, mfd, id, options));
}

UdpTransport::UdpTransport(Executor* executor, ExecutorPool* pool,
                           int unicast_fd, int multicast_fd, ServiceId id,
                           const Options& options)
    : executor_(executor),
      pool_(pool),
      unicast_fd_(unicast_fd),
      multicast_fd_(multicast_fd),
      id_(id),
      options_(options),
      buffers_(std::make_shared<UdpBufferPool>(
          kSlotBytes,
          /*max_free=*/std::max<std::size_t>(8, options.recv_batch * 4))),
      scratch_(std::make_unique<RecvScratch>()),
      receiver_([this] { receive_loop(); }) {}

UdpTransport::~UdpTransport() {
  stop_.store(true);
  receiver_.join();
  ::close(unicast_fd_);
  ::close(multicast_fd_);
  // Drop the handler so datagram tasks still queued on the executor become
  // no-ops (their weak_ptr can no longer lock). The buffer pool stays alive
  // through the tasks' shared_ptr so they can still return their slots.
  MutexLock lock(handler_mu_);
  handler_.reset();
}

void UdpTransport::set_receive_handler(ReceiveHandler handler) {
  auto next = handler
                  ? std::make_shared<const ReceiveHandler>(std::move(handler))
                  : std::shared_ptr<const ReceiveHandler>();
  MutexLock lock(handler_mu_);
  handler_ = std::move(next);
}

void UdpTransport::send(ServiceId dst, BytesView data) {
  sockaddr_in addr = make_addr(dst.addr(), dst.port());
  ssize_t sent = ::sendto(unicast_fd_, data.data(), data.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  send_syscalls_.fetch_add(1, std::memory_order_relaxed);
  if (sent < 0) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bytes_sent_.fetch_add(data.size(), std::memory_order_relaxed);
  }
}

void UdpTransport::send_batch(std::span<const Datagram> batch) {
#if defined(AMUSE_HAVE_MMSG)
  if (options_.batch_io && batch.size() > 1) {
    send_burst_mmsg(batch);
    return;
  }
#endif
  for (const Datagram& d : batch) send(d.dst, d.data);
}

void UdpTransport::send_burst_mmsg(std::span<const Datagram> batch) {
#if defined(AMUSE_HAVE_MMSG)
  // Flush in bounded chunks: the arrays live on the stack and the kernel
  // caps a single sendmmsg at UIO_MAXIOV anyway.
  constexpr std::size_t kChunk = 64;
  std::array<mmsghdr, kChunk> headers;
  std::array<iovec, kChunk> iovecs;
  std::array<sockaddr_in, kChunk> dests;
  for (std::size_t offset = 0; offset < batch.size(); offset += kChunk) {
    const std::size_t count = std::min(kChunk, batch.size() - offset);
    for (std::size_t i = 0; i < count; ++i) {
      const Datagram& d = batch[offset + i];
      dests[i] = make_addr(d.dst.addr(), d.dst.port());
      // iovec's base is non-const by design; the kernel only reads it.
      iovecs[i] = {const_cast<std::uint8_t*>(d.data.data()), d.data.size()};
      headers[i] = mmsghdr{};
      headers[i].msg_hdr.msg_name = &dests[i];
      headers[i].msg_hdr.msg_namelen = sizeof(dests[i]);
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
    }
    datagrams_sent_.fetch_add(count, std::memory_order_relaxed);
    std::size_t done = 0;
    while (done < count) {
      const std::size_t attempted = count - done;
      int n = ::sendmmsg(unicast_fd_, headers.data() + done,
                         static_cast<unsigned int>(attempted), 0);
      send_syscalls_.fetch_add(1, std::memory_order_relaxed);
      if (attempted >= 2) {
        batches_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      if (n <= 0) {
        send_failures_.fetch_add(attempted, std::memory_order_relaxed);
        break;
      }
      std::uint64_t sent_bytes = 0;
      for (std::size_t i = done; i < done + static_cast<std::size_t>(n); ++i) {
        sent_bytes += headers[i].msg_len;
      }
      bytes_sent_.fetch_add(sent_bytes, std::memory_order_relaxed);
      done += static_cast<std::size_t>(n);
    }
  }
#else
  (void)batch;
#endif
}

void UdpTransport::broadcast(BytesView data) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = inet_addr(options_.multicast_group);
  addr.sin_port = htons(options_.broadcast_port);
  ssize_t sent = ::sendto(unicast_fd_, data.data(), data.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  send_syscalls_.fetch_add(1, std::memory_order_relaxed);
  if (sent < 0) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bytes_sent_.fetch_add(data.size(), std::memory_order_relaxed);
  }
}

void UdpTransport::receive_loop() {
  std::array<pollfd, 2> fds{};
  fds[0] = {unicast_fd_, POLLIN, 0};
  fds[1] = {multicast_fd_, POLLIN, 0};

  while (!stop_.load()) {
    int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (n <= 0) continue;
    for (pollfd& p : fds) {
      if (!(p.revents & POLLIN)) continue;
      drain_fd(p.fd);
    }
  }
}

void UdpTransport::drain_fd(int fd) {
#if defined(AMUSE_HAVE_MMSG)
  if (options_.batch_io && options_.recv_batch > 1) {
    // Keep harvesting while full batches come back: a full harvest means
    // the socket queue likely still holds datagrams, and poll() need not
    // be consulted again until the queue runs dry.
    while (drain_batched(fd)) {
    }
    return;
  }
#endif
  drain_legacy(fd);
}

bool UdpTransport::drain_batched(int fd) {
#if defined(AMUSE_HAVE_MMSG)
  const std::size_t depth = options_.recv_batch;
  auto& headers = scratch_->headers;
  auto& iovecs = scratch_->iovecs;
  auto& sources = scratch_->sources;
  headers.resize(depth);
  iovecs.resize(depth);
  sources.resize(depth);

  std::vector<Bytes> slots;
  slots.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    slots.push_back(buffers_->acquire());
    iovecs[i] = {slots[i].data(), slots[i].size()};
    headers[i] = mmsghdr{};
    headers[i].msg_hdr.msg_name = &sources[i];
    headers[i].msg_hdr.msg_namelen = sizeof(sources[i]);
    headers[i].msg_hdr.msg_iov = &iovecs[i];
    headers[i].msg_hdr.msg_iovlen = 1;
  }

  int n = ::recvmmsg(fd, headers.data(), static_cast<unsigned int>(depth),
                     MSG_DONTWAIT, nullptr);
  if (n <= 0) {
    for (Bytes& b : slots) buffers_->release(std::move(b));
    return false;
  }
  recv_syscalls_.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<std::uint64_t>(n) >
      max_recv_batch_.load(std::memory_order_relaxed)) {
    max_recv_batch_.store(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
  }

  std::vector<Inbound> items;
  items.reserve(static_cast<std::size_t>(n));
  std::uint64_t received_bytes = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    ServiceId src = ServiceId::from_addr_port(
        ntohl(sources[i].sin_addr.s_addr), ntohs(sources[i].sin_port));
    // A service's own multicasts loop back; the Transport contract is that
    // broadcast() does not deliver to self, so filter them here.
    if (src == id_) {
      buffers_->release(std::move(slots[i]));
      continue;
    }
    received_bytes += headers[i].msg_len;
    items.push_back(Inbound{src, std::move(slots[i]), headers[i].msg_len});
  }
  for (std::size_t i = static_cast<std::size_t>(n); i < depth; ++i) {
    buffers_->release(std::move(slots[i]));
  }
  if (!items.empty()) {
    datagrams_received_.fetch_add(items.size(), std::memory_order_relaxed);
    bytes_received_.fetch_add(received_bytes, std::memory_order_relaxed);
    post_inbound(std::move(items));
  }
  return static_cast<std::size_t>(n) == depth;
#else
  (void)fd;
  return false;
#endif
}

void UdpTransport::drain_legacy(int fd) {
  Bytes slot = buffers_->acquire();
  sockaddr_in src{};
  socklen_t slen = sizeof(src);
  ssize_t got = ::recvfrom(fd, slot.data(), slot.size(), 0,
                           reinterpret_cast<sockaddr*>(&src), &slen);
  if (got < 0) {
    buffers_->release(std::move(slot));
    return;
  }
  recv_syscalls_.fetch_add(1, std::memory_order_relaxed);
  ServiceId src_id = ServiceId::from_addr_port(ntohl(src.sin_addr.s_addr),
                                               ntohs(src.sin_port));
  if (src_id == id_) {
    buffers_->release(std::move(slot));
    return;
  }
  datagrams_received_.fetch_add(1, std::memory_order_relaxed);
  bytes_received_.fetch_add(static_cast<std::uint64_t>(got),
                            std::memory_order_relaxed);
  std::vector<Inbound> items;
  items.push_back(
      Inbound{src_id, std::move(slot), static_cast<std::size_t>(got)});
  post_inbound(std::move(items));
}

void UdpTransport::post_inbound(std::vector<Inbound> items) {
  if (pool_ == nullptr) {
    post_to(*executor_, std::move(items));
    return;
  }
  if (pool_->size() == 1) {
    post_to(pool_->shard(0), std::move(items));
    return;
  }
  // Partition the harvest by the peer's stable shard so every peer's
  // datagrams stay on one consumer thread, in arrival order.
  std::vector<std::vector<Inbound>> per_shard(pool_->size());
  for (Inbound& item : items) {
    per_shard[pool_->shard_index(item.src)].push_back(std::move(item));
  }
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) continue;
    post_to(pool_->shard(i), std::move(per_shard[i]));
  }
}

void UdpTransport::post_to(Executor& executor, std::vector<Inbound> items) {
  std::weak_ptr<const ReceiveHandler> weak_handler;
  {
    MutexLock lock(handler_mu_);
    if (!handler_) {
      dropped_no_handler_.fetch_add(items.size(), std::memory_order_relaxed);
      for (Inbound& item : items) buffers_->release(std::move(item.buffer));
      return;
    }
    weak_handler = handler_;
  }
  if (items.size() >= 2) {
    recv_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  executor.post([weak_handler, items = std::move(items),
                 pool = buffers_]() mutable {
    auto h = weak_handler.lock();
    for (Inbound& item : items) {
      if (h && *h) {
        (*h)(item.src, BytesView(item.buffer.data(), item.length));
      }
      pool->release(std::move(item.buffer));
    }
  });
}

}  // namespace amuse
