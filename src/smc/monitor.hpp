// SelfMonitor: the cell observing itself through its own event bus.
//
// "Many management systems perform control actions as a result of receiving
//  events that an error threshold has been exceeded … or a component has
//  failed" (§II) — and the SMC's own health is managed the same way: the
// monitor periodically publishes an "smc.health" event carrying bus,
// policy and membership statistics, so ordinary obligation policies can
// close the autonomic loop (e.g. raise "alarm.overload" when the event
// rate or a member's delivery backlog crosses a threshold).
//
// Health event attributes:
//   members            current membership size
//   published_total    cumulative events through the bus
//   event_rate         events/second over the last interval
//   deliveries_total   cumulative member deliveries
//   denied_total       authorisation denials (publish + subscribe)
//   max_backlog        largest per-member outbound queue
//   policy_triggers    cumulative obligation-engine triggers
#pragma once

#include "smc/cell.hpp"

namespace amuse {

struct SelfMonitorConfig {
  Duration interval = seconds(5);
  /// Event type published each interval.
  std::string event_type = "smc.health";
};

class SelfMonitor {
 public:
  SelfMonitor(Executor& executor, SelfManagedCell& cell,
              SelfMonitorConfig config = {});
  ~SelfMonitor();

  SelfMonitor(const SelfMonitor&) = delete;
  SelfMonitor& operator=(const SelfMonitor&) = delete;

  AMUSE_AFFINITY(core_executor) void start();
  AMUSE_AFFINITY(core_executor) void stop();

  [[nodiscard]] std::uint64_t reports_published() const { return reports_; }

 private:
  AMUSE_AFFINITY(core_executor) void tick();

  Executor& executor_;
  SelfManagedCell& cell_;
  SelfMonitorConfig config_;
  TimerId timer_ = kNoTimer;
  bool running_ = false;
  std::uint64_t last_published_ = 0;
  std::uint64_t reports_ = 0;
};

}  // namespace amuse
