#include "smc/standby.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {
const Logger kLog("smc.standby");
}

StandbyCore::StandbyCore(Executor& executor,
                         std::shared_ptr<Transport> endpoint,
                         std::shared_ptr<Transport> promoted_bus_endpoint,
                         std::shared_ptr<Transport> promoted_discovery_endpoint,
                         StandbyCoreConfig config)
    : executor_(executor),
      endpoint_(std::move(endpoint)),
      promoted_bus_endpoint_(std::move(promoted_bus_endpoint)),
      promoted_discovery_endpoint_(std::move(promoted_discovery_endpoint)),
      config_(std::move(config)),
      resync_throttle_(config_.resync_min_interval),
      jitter_(endpoint_->local_id().raw(), 0x57A4DB) {
  DiscoveryAgentConfig ac = config_.agent;
  ac.role = std::string(kStandbyRole);
  ac.install_receive_handler = false;  // we own the endpoint and mux
  agent_ = std::make_unique<DiscoveryAgent>(executor_, endpoint_, ac);
  agent_->set_on_joined([this](ServiceId bus, std::uint32_t session) {
    on_joined(bus, session);
  });
  agent_->set_on_left([this] { on_left(); });

  endpoint_->set_receive_handler([this](ServiceId src, BytesView data) {
    // Same mux as SmcMember — reliable-channel frames to the bus client,
    // arbitration frames to the claim/vote handlers, discovery to the
    // agent.
    std::optional<Packet> p = Packet::decode(data);
    if (!p) return;
    if (p->type == PacketType::kData || p->type == PacketType::kAck) {
      if (client_) client_->handle_datagram(src, data);
    } else if (p->type == PacketType::kPromotionClaim) {
      if (auto claim = PromotionClaim::decode(p->payload)) {
        on_claim(p->src, *claim);
      }
    } else if (p->type == PacketType::kPromotionVote) {
      if (auto vote = PromotionVote::decode(p->payload)) {
        on_vote(p->src, *vote);
      }
    } else {
      agent_->handle_datagram(src, data);
    }
  });
}

StandbyCore::~StandbyCore() {
  executor_.cancel(lease_timer_);
  endpoint_->set_receive_handler(nullptr);
}

void StandbyCore::start() {
  if (running_) return;
  running_ = true;
  agent_->start();
}

void StandbyCore::stop() {
  running_ = false;
  executor_.cancel(lease_timer_);
  lease_timer_ = kNoTimer;
}

void StandbyCore::on_joined(ServiceId bus, std::uint32_t session) {
  BusClientConfig cc;
  cc.channel = config_.channel;
  cc.channel.min_peer_session = agent_->bus_channel_session();
  cc.session = session;
  cc.install_receive_handler = false;
  client_ = std::make_unique<BusClient>(executor_, endpoint_, bus, cc);
  client_->set_on_repl([this](const ReplUpdate& u) { on_repl(u); });
  // A fresh core owns us now (first admission, or a re-home to a promoted
  // winner after losing arbitration): any open claim round or stale vote
  // belongs to the previous incarnation.
  reset_arbitration();
  yield_until_ = {};
  voted_epoch_ = 0;
  voted_for_ = 0;
  // The admission snapshot is on its way; give the core a full lease to
  // deliver it.
  lease_deadline_ = executor_.now() + config_.lease_timeout;
  executor_.cancel(lease_timer_);
  arm_lease_check();
  kLog.info(id().to_string(), " standing by for cell via bus ",
            bus.to_string());
}

void StandbyCore::on_left() {
  // Keep the lease running: silence from a dead core is exactly what the
  // deadline measures. (If a live core purged us, its beacons are still
  // flowing and the agent re-joins before the lease runs out.)
  client_.reset();
}

void StandbyCore::on_repl(const ReplUpdate& update) {
  switch (mirror_.apply(update)) {
    case ReplMirror::Apply::kApplied:
      ++stats_.updates_applied;
      lease_deadline_ = executor_.now() + config_.lease_timeout;
      break;
    case ReplMirror::Apply::kResyncNeeded:
      // The core is alive — it just got ahead of us. Renew the lease and
      // ask for a snapshot; never promote from a suspect replica. The
      // throttle keeps a lossy link from turning every gap into a snapshot
      // storm: at most one request per resync_min_interval, the rest wait
      // for the next update (the core's lease stream guarantees one).
      lease_deadline_ = executor_.now() + config_.lease_timeout;
      if (resync_throttle_.allow(executor_.now())) {
        ++stats_.resyncs;
        if (client_) client_->request_repl_resync();
      } else {
        ++stats_.resyncs_suppressed;
      }
      break;
    case ReplMirror::Apply::kStaleEpoch:
      // A deposed core still streaming after a split brain: neither
      // liveness evidence nor state.
      ++stats_.stale_epoch_ignored;
      break;
  }
}

void StandbyCore::arm_lease_check() {
  // ±25% jitter, seeded per-standby: rival claim rounds must not stay
  // phase-locked tick-for-tick.
  std::int64_t base = config_.lease_check_interval.count();
  std::uint32_t spread = static_cast<std::uint32_t>(
      std::min<std::int64_t>(std::max<std::int64_t>(base / 2, 1), UINT32_MAX));
  std::int64_t jittered =
      base * 3 / 4 + static_cast<std::int64_t>(jitter_.bounded(spread));
  lease_timer_ = executor_.schedule_after(Duration(jittered), [this] {
    lease_timer_ = kNoTimer;
    check_lease();
  });
}

std::vector<ServiceId> StandbyCore::peers() const {
  std::vector<ServiceId> out;
  for (std::uint64_t raw : mirror_.state().standbys) {
    if (raw != id().raw()) out.push_back(ServiceId(raw));
  }
  return out;
}

std::size_t StandbyCore::quorum() const {
  const auto& roster = mirror_.state().standbys;
  std::size_t total = roster.size();
  if (roster.count(id().raw()) == 0) ++total;  // self always counts
  return total / 2 + 1;
}

void StandbyCore::reset_arbitration() {
  claim_epoch_ = 0;
  claim_nonce_ = 0;
  votes_granted_.clear();
}

void StandbyCore::check_lease() {
  if (!running_ || promoted()) return;
  TimePoint now = executor_.now();
  if (now < lease_deadline_) {
    // Repl traffic resumed: the core is alive, stand down any open round.
    reset_arbitration();
    arm_lease_check();
    return;
  }
  if (!mirror_.synced()) {
    // Dead core but no replica to promote from: nothing safe to do except
    // keep waiting (and count it — this is a deployment error, the lease
    // outran the first snapshot).
    ++stats_.lease_expiries_unsynced;
    lease_deadline_ = now + config_.lease_timeout;
    arm_lease_check();
    return;
  }
  if (!config_.require_quorum) {
    // Pre-quorum behaviour (sensitivity testing only): first synced
    // standby to notice the lapse promotes unilaterally.
    promote(mirror_.epoch() + 1);
    return;
  }
  if (now < yield_until_) {
    // A better rival is mid-promotion; give its beacons time to arrive.
    arm_lease_check();
    return;
  }
  std::vector<ServiceId> ps = peers();
  if (ps.empty()) {
    // Solo standby: majority of one is the implicit self-vote.
    promote(mirror_.epoch() + 1);
    return;
  }
  if (claim_epoch_ == 0) {
    claim_epoch_ = mirror_.epoch() + 1;
    claim_nonce_ = ++claim_rounds_;
    votes_granted_.clear();
    ++stats_.promotion_claims;
    kLog.info(id().to_string(), " claiming promotion at epoch ",
              std::to_string(claim_epoch_));
  }
  broadcast_claim();  // claims are unreliable; re-offer every tick
  arm_lease_check();
}

void StandbyCore::broadcast_claim() {
  PromotionClaim claim;
  claim.cell = config_.agent.cell_name;
  claim.epoch = claim_epoch_;
  claim.version = mirror_.version();
  claim.nonce = claim_nonce_;
  for (ServiceId peer : peers()) {
    endpoint_->send(peer, claim.to_packet(id(), peer).encode());
  }
}

void StandbyCore::on_claim(ServiceId src, const PromotionClaim& claim) {
  if (!running_ || promoted()) return;
  if (claim.cell != config_.agent.cell_name) return;
  if (src.raw() == id().raw()) return;
  TimePoint now = executor_.now();

  PromotionVote vote;
  vote.cell = claim.cell;
  vote.epoch = claim.epoch;
  vote.nonce = claim.nonce;
  vote.voter_version = mirror_.version();
  vote.granted = false;

  // Refuse while our own lease is fresh: we can still hear the core, so
  // the claimant's silence is its own link, not a dead cell.
  bool lease_expired = now >= lease_deadline_;
  // Refuse claims for epochs our mirror has already caught up past.
  bool epoch_advances = claim.epoch > mirror_.epoch();
  // Endorse only claimants that beat our own position — if they do not,
  // we are the better candidate and our own claim settles it.
  bool rival_better =
      promotion_beats(claim.version, src, mirror_.version(), id());
  // Sticky grant: one claimant per epoch until the vote expires, so two
  // rounds cannot both count us towards a majority.
  bool sticky_elsewhere = voted_epoch_ == claim.epoch &&
                          voted_for_ != src.raw() && now < vote_expires_;

  if (lease_expired && epoch_advances && rival_better && !sticky_elsewhere) {
    vote.granted = true;
    voted_epoch_ = claim.epoch;
    voted_for_ = src.raw();
    vote_expires_ = now + config_.vote_ttl;
    ++stats_.promotion_votes;
    if (claim_epoch_ != 0) {
      // Our own round loses to the rival: stand down and wait for its
      // beacons (re-claim after yield_timeout if it dies mid-promotion).
      ++stats_.claims_lost;
      reset_arbitration();
      yield_until_ = now + config_.yield_timeout;
      kLog.info(id().to_string(), " yielding promotion to ",
                src.to_string());
    }
  }
  endpoint_->send(src, vote.to_packet(id(), src).encode());
}

void StandbyCore::on_vote(ServiceId src, const PromotionVote& vote) {
  if (!running_ || promoted() || claim_epoch_ == 0) return;
  if (vote.cell != config_.agent.cell_name) return;
  if (vote.epoch != claim_epoch_ || vote.nonce != claim_nonce_) return;
  if (!vote.granted) return;
  votes_granted_.insert(src.raw());
  if (1 + votes_granted_.size() >= quorum()) {
    kLog.info(id().to_string(), " promotion quorum reached (",
              std::to_string(1 + votes_granted_.size()), " of ",
              std::to_string(quorum()), " needed)");
    promote(claim_epoch_);
  }
}

void StandbyCore::promote(std::uint64_t epoch) {
  ++stats_.promotions;
  reset_arbitration();
  ReplState replica = mirror_.take_state();
  epoch = std::max(epoch, replica.epoch + 1);
  kLog.info(id().to_string(), " promoting to active core at epoch ",
            std::to_string(epoch));
  // Quietly stop following the dead cell; the promoted core owns the name
  // now and the agent must not re-join a revived predecessor.
  agent_->leave();
  SmcCellConfig cc = config_.cell;
  cc.name = config_.agent.cell_name;
  cc.pre_shared_key = config_.agent.pre_shared_key;
  cc.bus.ha = true;
  cc.bus.epoch = epoch;
  cc.bus.restore = std::make_shared<const ReplState>(std::move(replica));
  cell_ = std::make_unique<SelfManagedCell>(
      executor_, promoted_bus_endpoint_, promoted_discovery_endpoint_, cc);
  if (on_promoted_) on_promoted_(*cell_);
  cell_->start();
}

}  // namespace amuse
