#include "smc/standby.hpp"

#include "common/log.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {
const Logger kLog("smc.standby");
}

StandbyCore::StandbyCore(Executor& executor,
                         std::shared_ptr<Transport> endpoint,
                         std::shared_ptr<Transport> promoted_bus_endpoint,
                         std::shared_ptr<Transport> promoted_discovery_endpoint,
                         StandbyCoreConfig config)
    : executor_(executor),
      endpoint_(std::move(endpoint)),
      promoted_bus_endpoint_(std::move(promoted_bus_endpoint)),
      promoted_discovery_endpoint_(std::move(promoted_discovery_endpoint)),
      config_(std::move(config)) {
  DiscoveryAgentConfig ac = config_.agent;
  ac.role = std::string(kStandbyRole);
  ac.install_receive_handler = false;  // we own the endpoint and mux
  agent_ = std::make_unique<DiscoveryAgent>(executor_, endpoint_, ac);
  agent_->set_on_joined([this](ServiceId bus, std::uint32_t session) {
    on_joined(bus, session);
  });
  agent_->set_on_left([this] { on_left(); });

  endpoint_->set_receive_handler([this](ServiceId src, BytesView data) {
    // Same mux as SmcMember: reliable-channel frames to the bus client,
    // discovery traffic to the agent.
    std::optional<Packet> p = Packet::decode(data);
    if (!p) return;
    if (p->type == PacketType::kData || p->type == PacketType::kAck) {
      if (client_) client_->handle_datagram(src, data);
    } else {
      agent_->handle_datagram(src, data);
    }
  });
}

StandbyCore::~StandbyCore() {
  executor_.cancel(lease_timer_);
  endpoint_->set_receive_handler(nullptr);
}

void StandbyCore::start() {
  if (running_) return;
  running_ = true;
  agent_->start();
}

void StandbyCore::stop() {
  running_ = false;
  executor_.cancel(lease_timer_);
  lease_timer_ = kNoTimer;
}

void StandbyCore::on_joined(ServiceId bus, std::uint32_t session) {
  BusClientConfig cc;
  cc.channel = config_.channel;
  cc.channel.min_peer_session = agent_->bus_channel_session();
  cc.session = session;
  cc.install_receive_handler = false;
  client_ = std::make_unique<BusClient>(executor_, endpoint_, bus, cc);
  client_->set_on_repl([this](const ReplUpdate& u) { on_repl(u); });
  // The admission snapshot is on its way; give the core a full lease to
  // deliver it.
  lease_deadline_ = executor_.now() + config_.lease_timeout;
  executor_.cancel(lease_timer_);
  arm_lease_check();
  kLog.info(id().to_string(), " standing by for cell via bus ",
            bus.to_string());
}

void StandbyCore::on_left() {
  // Keep the lease running: silence from a dead core is exactly what the
  // deadline measures. (If a live core purged us, its beacons are still
  // flowing and the agent re-joins before the lease runs out.)
  client_.reset();
}

void StandbyCore::on_repl(const ReplUpdate& update) {
  switch (mirror_.apply(update)) {
    case ReplMirror::Apply::kApplied:
      ++stats_.updates_applied;
      lease_deadline_ = executor_.now() + config_.lease_timeout;
      break;
    case ReplMirror::Apply::kResyncNeeded:
      // The core is alive — it just got ahead of us. Renew the lease and
      // ask for a snapshot; never promote from a suspect replica.
      ++stats_.resyncs;
      lease_deadline_ = executor_.now() + config_.lease_timeout;
      if (client_) client_->request_repl_resync();
      break;
    case ReplMirror::Apply::kStaleEpoch:
      // A deposed core still streaming after a split brain: neither
      // liveness evidence nor state.
      ++stats_.stale_epoch_ignored;
      break;
  }
}

void StandbyCore::arm_lease_check() {
  lease_timer_ = executor_.schedule_after(config_.lease_check_interval,
                                          [this] {
                                            lease_timer_ = kNoTimer;
                                            check_lease();
                                          });
}

void StandbyCore::check_lease() {
  if (!running_ || promoted()) return;
  if (executor_.now() >= lease_deadline_) {
    if (mirror_.synced()) {
      promote();
      return;
    }
    // Dead core but no replica to promote from: nothing safe to do except
    // keep waiting (and count it — this is a deployment error, the lease
    // outran the first snapshot).
    ++stats_.lease_expiries_unsynced;
    lease_deadline_ = executor_.now() + config_.lease_timeout;
  }
  arm_lease_check();
}

void StandbyCore::promote() {
  ++stats_.promotions;
  ReplState replica = mirror_.take_state();
  std::uint64_t epoch = replica.epoch + 1;
  kLog.info(id().to_string(), " promoting to active core at epoch ",
            std::to_string(epoch));
  // Quietly stop following the dead cell; the promoted core owns the name
  // now and the agent must not re-join a revived predecessor.
  agent_->leave();
  SmcCellConfig cc = config_.cell;
  cc.name = config_.agent.cell_name;
  cc.pre_shared_key = config_.agent.pre_shared_key;
  cc.bus.ha = true;
  cc.bus.epoch = epoch;
  cc.bus.restore = std::make_shared<const ReplState>(std::move(replica));
  cell_ = std::make_unique<SelfManagedCell>(
      executor_, promoted_bus_endpoint_, promoted_discovery_endpoint_, cc);
  if (on_promoted_) on_promoted_(*cell_);
  cell_->start();
}

}  // namespace amuse
