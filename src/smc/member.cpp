#include "smc/member.hpp"

namespace amuse {

SmcMember::SmcMember(Executor& executor, std::shared_ptr<Transport> transport,
                     SmcMemberConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      config_(std::move(config)) {
  DiscoveryAgentConfig ac = config_.agent;
  ac.install_receive_handler = false;  // we own the endpoint and mux
  agent_ = std::make_unique<DiscoveryAgent>(executor_, transport_, ac);
  agent_->set_on_joined([this](ServiceId bus, std::uint32_t session) {
    on_cell_joined(bus, session);
  });
  agent_->set_on_left([this] { on_cell_left(); });
  // Presented in the JOIN_RESP so a core whose quench table matches what we
  // already hold (a promoted standby, typically) skips the re-push.
  agent_->set_quench_digest_provider([this] { return quench_stash_; });

  transport_->set_receive_handler([this](ServiceId src, BytesView data) {
    // Mux: reliable-channel frames go to the bus client, the discovery
    // protocol to the agent. Peek at the decoded type once.
    std::optional<Packet> p = Packet::decode(data);
    if (!p) return;
    if (p->type == PacketType::kData || p->type == PacketType::kAck) {
      if (client_) client_->handle_datagram(src, data);
    } else {
      agent_->handle_datagram(src, data);
    }
  });
}

SmcMember::~SmcMember() { transport_->set_receive_handler(nullptr); }

void SmcMember::start() { agent_->start(); }

void SmcMember::leave() {
  agent_->leave();
  // on_cell_left() runs via the agent callback.
}

std::uint64_t SmcMember::subscribe(const Filter& filter, Handler handler) {
  std::uint64_t id = next_id_++;
  desired_.emplace(id, DesiredSub{filter, handler});
  if (client_) {
    live_ids_[id] = client_->subscribe(filter, std::move(handler));
  }
  return id;
}

void SmcMember::unsubscribe(std::uint64_t id) {
  desired_.erase(id);
  auto it = live_ids_.find(id);
  if (it != live_ids_.end()) {
    if (client_) client_->unsubscribe(it->second);
    live_ids_.erase(it);
  }
}

bool SmcMember::publish(Event event) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "SmcMember::publish");
  if (client_ && !client_->pressured()) {
    return client_->publish(std::move(event));
  }
  if (offline_.size() >= config_.offline_buffer) {
    ++stats_.buffer_dropped;
    return false;
  }
  if (client_) ++stats_.pressure_deferrals;
  offline_.push_back(std::move(event));
  ++stats_.buffered;
  return true;
}

bool SmcMember::publish(const EventPtr& event) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "SmcMember::publish");
  if (!event) return false;
  if (client_ && !client_->pressured()) {
    return client_->publish(event);
  }
  if (offline_.size() >= config_.offline_buffer) {
    ++stats_.buffer_dropped;
    return false;
  }
  if (client_) ++stats_.pressure_deferrals;
  offline_.push_back(Event(*event));
  ++stats_.buffered;
  return true;
}

void SmcMember::on_cell_joined(ServiceId bus, std::uint32_t session) {
  ++stats_.joins;
  BusClientConfig cc;
  cc.channel = config_.channel;
  // Accept only frames from the proxy incarnation created for *this*
  // admission (or later): a stale retransmission from a pre-purge proxy is
  // also seq 0 and would otherwise be adopted by the fresh receiver,
  // leaking the previous incarnation's backlog.
  cc.channel.min_peer_session = agent_->bus_channel_session();
  cc.quench = config_.quench;
  cc.session = session;
  cc.install_receive_handler = false;
  client_ = std::make_unique<BusClient>(executor_, transport_, bus, cc);
  // Exactly-once across core failover: a promoted core re-delivers its
  // replicated spool to every re-homing member; anything whose (epoch, seq)
  // origin stamp we already saw under the previous incarnation is dropped
  // here, before handler dispatch.
  client_->set_delivery_filter([this](const Event& event) {
    auto epoch = static_cast<std::uint64_t>(event.get_int(kHaEpochAttr, 0));
    if (epoch == 0) return true;  // not HA-stamped
    auto seq = static_cast<std::uint64_t>(event.get_int(kHaSeqAttr, 0));
    if (ha_dedup_.admit(epoch, seq)) return true;
    ++stats_.ha_duplicates_dropped;
    return false;
  });
  client_->set_on_pressure([this](bool under_pressure) {
    if (!under_pressure) flush_offline();
    if (on_pressure_) on_pressure_(under_pressure);
  });
  if (on_interest_) client_->set_on_interest(on_interest_);

  // Re-register durable subscriptions under the fresh session.
  live_ids_.clear();
  for (const auto& [id, sub] : desired_) {
    live_ids_[id] = client_->subscribe(sub.filter, sub.handler);
  }
  flush_offline();  // events queued while out of range
  if (on_joined_) on_joined_();
}

void SmcMember::flush_offline() {
  // Stop mid-flush if a publish's own traffic re-raises pressure; the
  // remainder goes out on the next release signal.
  while (client_ && !client_->pressured() && !offline_.empty()) {
    Event event = std::move(offline_.front());
    offline_.pop_front();
    ++stats_.flushed;
    (void)client_->publish(std::move(event));
  }
}

void SmcMember::on_cell_left() {
  // Remember the identity of the quench table we hold: the next JOIN_RESP
  // presents it so an unchanged core (or a warm standby promoted with the
  // same replicated state) does not push the table again.
  if (client_ && client_->quench_received()) {
    quench_stash_ = client_->quench_digest();
  }
  client_.reset();
  live_ids_.clear();
  if (on_left_) on_left_();
}

}  // namespace amuse
