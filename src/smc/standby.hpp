// StandbyCore: the warm-standby half of the HA core pair (DESIGN.md §13).
//
// Joins the active cell as an ordinary member with the standby role; the
// bus recognises the role and streams its replication log (membership,
// subscriptions, counters, spool) over the control class instead of
// treating it as a subscriber. The standby holds a ReplMirror and a lease:
// every repl message — incremental, snapshot, or bare lease renewal —
// pushes the deadline out. When the deadline passes with the mirror in
// sync, the active core is presumed dead — but with more than one standby
// the first to notice must not simply promote (two would split the cell).
// Instead it runs the quorum arbitration of DESIGN.md §13.5: broadcast a
// kPromotionClaim (claimed epoch, synced repl version, round nonce) to every
// peer on the replicated standby roster and promote only once a majority of
// the roster — its own implicit vote included — has granted a
// kPromotionVote. A voter refuses while its own lease is still fresh (a
// standby whose repl link broke cannot usurp a healthy cell) and endorses
// only claimants that beat its own position (higher version, ties to the
// smaller ServiceId), so the best-synced standby always wins. Losers stand
// down, keep their mirror, and re-home to the winner's higher-epoch beacon,
// where re-admission streams them a fresh kReplSnapshot — the cell re-arms
// to N-1 standbys without operator action (standby chains).
//
// The promoted core builds a full SelfManagedCell from the replica at
// epoch + 1 on its own pre-provisioned endpoints and starts beaconing.
// Members re-home via discovery (the higher epoch fences the dead
// incarnation) and the promoted bus re-delivers its spool, deduped
// member-side on the (epoch, seq) origin stamp.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "bus/bus_client.hpp"
#include "bus/replication.hpp"
#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "discovery/discovery_agent.hpp"
#include "smc/cell.hpp"
#include "wire/promotion.hpp"

namespace amuse {

struct StandbyCoreConfig {
  /// Cell name, pre-shared key, timeouts. The role is forced to
  /// kStandbyRole and the receive handler is owned by the StandbyCore.
  DiscoveryAgentConfig agent;
  ReliableChannelConfig channel;
  /// No repl traffic for this long → the active core is presumed dead.
  /// Must comfortably exceed the bus's repl_lease_interval (so one lost
  /// datagram is not a failover) and stay below the members'
  /// cell_lost_after (so the promoted core beacons before members give
  /// up searching).
  Duration lease_timeout = milliseconds(1500);
  /// Cadence of the lease expiry check. The actual period is jittered
  /// ±25% (seeded per-standby) so rival claims do not collide tick-for-tick.
  Duration lease_check_interval = milliseconds(200);
  /// Quorum arbitration (DESIGN.md §13.5). With `require_quorum` false the
  /// pre-quorum behaviour is restored — first synced standby to notice the
  /// lapse promotes unilaterally. Exists only so the sensitivity test can
  /// prove the oracle catches the double-promotion it allows.
  bool require_quorum = true;
  /// A granted vote is sticky for this long: the voter refuses rival
  /// claimants at the same epoch until the grantee has had time to promote.
  Duration vote_ttl = seconds(2);
  /// After standing down to a better rival, wait this long for its beacons
  /// before re-claiming (covers the rival dying mid-promotion).
  Duration yield_timeout = seconds(2);
  /// Minimum spacing between full-resync requests (ResyncThrottle): a lossy
  /// repl link must not turn every gap into a snapshot storm.
  Duration resync_min_interval = milliseconds(600);
  /// Template for the promoted cell (bus limits, quench, authorisation,
  /// ...). name, pre_shared_key, bus.ha/epoch/restore are overridden at
  /// promotion time from the replica.
  SmcCellConfig cell;
};

class StandbyCore {
 public:
  /// Fired after the promoted cell is constructed but BEFORE it starts,
  /// so observers (tests, torture oracles) attach before the first member
  /// re-homes.
  using PromotedFn = std::function<void(SelfManagedCell&)>;

  /// `endpoint` speaks to the active cell (discovery + repl stream); the
  /// promoted endpoints lie dormant until promotion creates the new core
  /// on them.
  StandbyCore(Executor& executor, std::shared_ptr<Transport> endpoint,
              std::shared_ptr<Transport> promoted_bus_endpoint,
              std::shared_ptr<Transport> promoted_discovery_endpoint,
              StandbyCoreConfig config);
  ~StandbyCore();

  StandbyCore(const StandbyCore&) = delete;
  StandbyCore& operator=(const StandbyCore&) = delete;

  /// Begins searching for the active cell.
  AMUSE_AFFINITY(core_executor) void start();
  /// Stops the lease; an already promoted cell keeps running.
  AMUSE_AFFINITY(core_executor) void stop();

  void set_on_promoted(PromotedFn fn) { on_promoted_ = std::move(fn); }

  [[nodiscard]] bool promoted() const { return cell_ != nullptr; }
  /// The promoted cell (null until promotion).
  [[nodiscard]] SelfManagedCell* cell() { return cell_.get(); }
  [[nodiscard]] bool synced() const { return mirror_.synced(); }
  [[nodiscard]] const ReplMirror& mirror() const { return mirror_; }
  [[nodiscard]] DiscoveryAgent& agent() { return *agent_; }
  [[nodiscard]] ServiceId id() const { return endpoint_->local_id(); }

  struct Stats {
    std::uint64_t updates_applied = 0;
    std::uint64_t resyncs = 0;             // resync requests sent
    std::uint64_t resyncs_suppressed = 0;  // throttled resync requests
    std::uint64_t stale_epoch_ignored = 0; // deposed-core stream dropped
    std::uint64_t promotions = 0;
    std::uint64_t lease_expiries_unsynced = 0;  // dead core, no replica
    std::uint64_t promotion_claims = 0;  // claim rounds started
    std::uint64_t promotion_votes = 0;   // grants issued to peers
    std::uint64_t claims_lost = 0;       // rounds abandoned to a rival
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  AMUSE_AFFINITY(core_executor)
  void on_joined(ServiceId bus, std::uint32_t session);
  AMUSE_AFFINITY(core_executor) void on_left();
  AMUSE_AFFINITY(core_executor) void on_repl(const ReplUpdate& update);
  AMUSE_AFFINITY(core_executor) void check_lease();
  AMUSE_AFFINITY(core_executor) void on_claim(ServiceId src,
                                              const PromotionClaim& claim);
  AMUSE_AFFINITY(core_executor) void on_vote(ServiceId src,
                                             const PromotionVote& vote);
  AMUSE_AFFINITY(core_executor) void broadcast_claim();
  AMUSE_AFFINITY(core_executor) void promote(std::uint64_t epoch);
  void arm_lease_check();
  void reset_arbitration();
  /// Roster peers (replicated standby set minus self).
  [[nodiscard]] std::vector<ServiceId> peers() const;
  /// Votes needed to promote: majority of the roster, self included.
  [[nodiscard]] std::size_t quorum() const;

  Executor& executor_;
  std::shared_ptr<Transport> endpoint_;
  std::shared_ptr<Transport> promoted_bus_endpoint_;
  std::shared_ptr<Transport> promoted_discovery_endpoint_;
  StandbyCoreConfig config_;
  std::unique_ptr<DiscoveryAgent> agent_;
  std::unique_ptr<BusClient> client_;
  ReplMirror mirror_;
  ResyncThrottle resync_throttle_;
  std::unique_ptr<SelfManagedCell> cell_;
  PromotedFn on_promoted_;
  TimePoint lease_deadline_{};
  TimerId lease_timer_ = kNoTimer;
  bool running_ = false;
  Rng jitter_;  ///< seeded from the ServiceId: deterministic, per-standby
  // Claimant state: nonzero claim_epoch_ marks an open round.
  std::uint64_t claim_epoch_ = 0;
  std::uint64_t claim_nonce_ = 0;
  std::uint64_t claim_rounds_ = 0;
  std::set<std::uint64_t> votes_granted_;
  TimePoint yield_until_{};  ///< standing down to a better rival until then
  // Voter state: at most one sticky grant per epoch.
  std::uint64_t voted_epoch_ = 0;
  std::uint64_t voted_for_ = 0;
  TimePoint vote_expires_{};
  Stats stats_;
};

}  // namespace amuse
