// StandbyCore: the warm-standby half of the HA core pair (DESIGN.md §13).
//
// Joins the active cell as an ordinary member with the standby role; the
// bus recognises the role and streams its replication log (membership,
// subscriptions, counters, spool) over the control class instead of
// treating it as a subscriber. The standby holds a ReplMirror and a lease:
// every repl message — incremental, snapshot, or bare lease renewal —
// pushes the deadline out. When the deadline passes with the mirror in
// sync, the active core is presumed dead and the standby promotes: it
// builds a full SelfManagedCell from the replica at epoch + 1 on its own
// pre-provisioned endpoints and starts beaconing. Members re-home via
// discovery (the higher epoch fences the dead incarnation) and the
// promoted bus re-delivers its spool, deduped member-side on the
// (epoch, seq) origin stamp.
#pragma once

#include <functional>
#include <memory>

#include "bus/bus_client.hpp"
#include "bus/replication.hpp"
#include "common/annotations.hpp"
#include "discovery/discovery_agent.hpp"
#include "smc/cell.hpp"

namespace amuse {

struct StandbyCoreConfig {
  /// Cell name, pre-shared key, timeouts. The role is forced to
  /// kStandbyRole and the receive handler is owned by the StandbyCore.
  DiscoveryAgentConfig agent;
  ReliableChannelConfig channel;
  /// No repl traffic for this long → the active core is presumed dead.
  /// Must comfortably exceed the bus's repl_lease_interval (so one lost
  /// datagram is not a failover) and stay below the members'
  /// cell_lost_after (so the promoted core beacons before members give
  /// up searching).
  Duration lease_timeout = milliseconds(1500);
  /// Cadence of the lease expiry check.
  Duration lease_check_interval = milliseconds(200);
  /// Template for the promoted cell (bus limits, quench, authorisation,
  /// ...). name, pre_shared_key, bus.ha/epoch/restore are overridden at
  /// promotion time from the replica.
  SmcCellConfig cell;
};

class StandbyCore {
 public:
  /// Fired after the promoted cell is constructed but BEFORE it starts,
  /// so observers (tests, torture oracles) attach before the first member
  /// re-homes.
  using PromotedFn = std::function<void(SelfManagedCell&)>;

  /// `endpoint` speaks to the active cell (discovery + repl stream); the
  /// promoted endpoints lie dormant until promotion creates the new core
  /// on them.
  StandbyCore(Executor& executor, std::shared_ptr<Transport> endpoint,
              std::shared_ptr<Transport> promoted_bus_endpoint,
              std::shared_ptr<Transport> promoted_discovery_endpoint,
              StandbyCoreConfig config);
  ~StandbyCore();

  StandbyCore(const StandbyCore&) = delete;
  StandbyCore& operator=(const StandbyCore&) = delete;

  /// Begins searching for the active cell.
  AMUSE_AFFINITY(core_executor) void start();
  /// Stops the lease; an already promoted cell keeps running.
  AMUSE_AFFINITY(core_executor) void stop();

  void set_on_promoted(PromotedFn fn) { on_promoted_ = std::move(fn); }

  [[nodiscard]] bool promoted() const { return cell_ != nullptr; }
  /// The promoted cell (null until promotion).
  [[nodiscard]] SelfManagedCell* cell() { return cell_.get(); }
  [[nodiscard]] bool synced() const { return mirror_.synced(); }
  [[nodiscard]] const ReplMirror& mirror() const { return mirror_; }
  [[nodiscard]] DiscoveryAgent& agent() { return *agent_; }
  [[nodiscard]] ServiceId id() const { return endpoint_->local_id(); }

  struct Stats {
    std::uint64_t updates_applied = 0;
    std::uint64_t resyncs = 0;             // resync requests sent
    std::uint64_t stale_epoch_ignored = 0; // deposed-core stream dropped
    std::uint64_t promotions = 0;
    std::uint64_t lease_expiries_unsynced = 0;  // dead core, no replica
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  AMUSE_AFFINITY(core_executor)
  void on_joined(ServiceId bus, std::uint32_t session);
  AMUSE_AFFINITY(core_executor) void on_left();
  AMUSE_AFFINITY(core_executor) void on_repl(const ReplUpdate& update);
  AMUSE_AFFINITY(core_executor) void check_lease();
  AMUSE_AFFINITY(core_executor) void promote();
  void arm_lease_check();

  Executor& executor_;
  std::shared_ptr<Transport> endpoint_;
  std::shared_ptr<Transport> promoted_bus_endpoint_;
  std::shared_ptr<Transport> promoted_discovery_endpoint_;
  StandbyCoreConfig config_;
  std::unique_ptr<DiscoveryAgent> agent_;
  std::unique_ptr<BusClient> client_;
  ReplMirror mirror_;
  std::unique_ptr<SelfManagedCell> cell_;
  PromotedFn on_promoted_;
  TimePoint lease_deadline_{};
  TimerId lease_timer_ = kNoTimer;
  bool running_ = false;
  Stats stats_;
};

}  // namespace amuse
