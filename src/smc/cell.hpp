// SelfManagedCell: the full SMC core (§I, §II) assembled on one host —
// event bus + discovery service + policy service (store, obligation engine,
// authorisation, deployment) wired together:
//   - discovery admits/purges members → bus creates/destroys proxies and
//     "New Member"/"Purge Member" events appear on the bus;
//   - the policy service's authorisation hook gates every member publish
//     and subscribe;
//   - the obligation engine and policy deployer run as local subscribers.
#pragma once

#include <memory>

#include "bus/event_bus.hpp"
#include "discovery/discovery_service.hpp"
#include "policy/authorisation.hpp"
#include "policy/deployment.hpp"
#include "policy/obligation_engine.hpp"
#include "policy/policy_store.hpp"

namespace amuse {

struct SmcCellConfig {
  std::string name = "smc";
  Bytes pre_shared_key = to_bytes("amuse-cell-key");
  EventBusConfig bus;
  /// cell_name and pre_shared_key are overridden from the fields above.
  DiscoveryConfig discovery;
  /// Install the policy store's authorisation service on the bus.
  bool enforce_authorisation = true;
};

class SelfManagedCell {
 public:
  /// `bus_endpoint` and `discovery_endpoint` are two transport endpoints on
  /// the core host (the discovery protocol does not use the event bus).
  SelfManagedCell(Executor& executor,
                  std::shared_ptr<Transport> bus_endpoint,
                  std::shared_ptr<Transport> discovery_endpoint,
                  SmcCellConfig config = {});

  /// Starts discovery beaconing and the policy engine.
  AMUSE_AFFINITY(core_executor) void start();
  AMUSE_AFFINITY(core_executor) void stop();

  /// Parses and loads Ponder-lite policy text into the store.
  AMUSE_AFFINITY(core_executor) void load_policies(const std::string& text);

  [[nodiscard]] EventBus& bus() { return *bus_; }
  [[nodiscard]] DiscoveryService& discovery() { return *discovery_; }
  [[nodiscard]] PolicyStore& policies() { return store_; }
  [[nodiscard]] ObligationEngine& obligations() { return *engine_; }
  [[nodiscard]] AuthorisationService& authorisation() { return *auth_; }
  [[nodiscard]] PolicyDeployer& deployer() { return *deployer_; }
  [[nodiscard]] const SmcCellConfig& config() const { return config_; }

 private:
  SmcCellConfig config_;
  std::unique_ptr<EventBus> bus_;
  std::unique_ptr<DiscoveryService> discovery_;
  PolicyStore store_;
  std::unique_ptr<AuthorisationService> auth_;
  std::unique_ptr<ObligationEngine> engine_;
  std::unique_ptr<PolicyDeployer> deployer_;
};

}  // namespace amuse
