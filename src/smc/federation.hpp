// FederationBridge: peer-to-peer composition of self-managed cells.
//
// "Autonomous, self-managed cells must be composable to form larger cells
//  but also need to collaborate and integrate with each other in
//  peer-to-peer relationships" (§I; developed further in the authors'
//  "Self-managed cells and their federation"). The bridge re-publishes
// events matching an export filter from one cell's bus into another's.
// It is the in-process flavour of federation: both buses share one core
// executor and one address space, so the forward is zero-copy — the
// shared routed instance crosses untouched. Loop termination and
// multi-path dedup come from the buses' immutable origin stamps
// (DESIGN.md §11), not from a mutable hop counter: an event that loops
// home, or arrives twice over different paths, dies at the destination
// bus before it counts as published. The deployable, interest-driven
// flavour is FederationGateway (smc/gateway.hpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bus/event_bus.hpp"

namespace amuse {

class FederationBridge {
 public:
  /// Bridges `from` → `to`; create a second bridge for the reverse
  /// direction. Enables federation (origin stamping + dedup) on both
  /// buses.
  FederationBridge(EventBus& from, EventBus& to);
  ~FederationBridge();

  FederationBridge(const FederationBridge&) = delete;
  FederationBridge& operator=(const FederationBridge&) = delete;

  /// Exports events matching `filter` into the destination cell. Both
  /// cells must share one core executor: forward() republishes straight
  /// into the destination bus with no cross-executor hop.
  AMUSE_AFFINITY(core_executor) void share(const Filter& filter);

  struct Stats {
    std::uint64_t forwarded = 0;
    /// Events that originated in the destination cell — forwarding them
    /// back would only feed its origin dedup, so they never cross.
    std::uint64_t loopback_suppressed = 0;
    /// Same delivery matched several share filters — forwarded once.
    std::uint64_t local_dups_suppressed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  AMUSE_AFFINITY(core_executor) void forward(const EventPtr& e);

  EventBus& from_;
  EventBus& to_;
  std::vector<std::uint64_t> subscriptions_;
  // (origin cell, seq) of the last forwarded event: handler invocations
  // for one delivery are consecutive, so one element dedups overlapping
  // share filters exactly.
  std::pair<std::uint64_t, std::uint64_t> last_forwarded_{0, 0};
  Stats stats_;
};

}  // namespace amuse
