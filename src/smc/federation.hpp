// FederationBridge: peer-to-peer composition of self-managed cells.
//
// "Autonomous, self-managed cells must be composable to form larger cells
//  but also need to collaborate and integrate with each other in
//  peer-to-peer relationships" (§I; developed further in the authors'
//  "Self-managed cells and their federation"). The bridge re-publishes
// events matching an export filter from one cell's bus into another's,
// tagging them with a hop count so federated loops terminate.
#pragma once

#include <vector>

#include "bus/event_bus.hpp"

namespace amuse {

struct FederationConfig {
  /// Maximum number of cell-to-cell hops an event may take.
  int max_hops = 2;
  /// Attribute carrying the hop count.
  std::string hop_attr = "x-fed-hops";
};

class FederationBridge {
 public:
  /// Bridges `from` → `to`; create a second bridge for the reverse
  /// direction.
  FederationBridge(EventBus& from, EventBus& to,
                   FederationConfig config = {});
  ~FederationBridge();

  FederationBridge(const FederationBridge&) = delete;
  FederationBridge& operator=(const FederationBridge&) = delete;

  /// Exports events matching `filter` into the destination cell. Both
  /// cells must share one core executor: forward() republishes straight
  /// into the destination bus with no cross-executor hop.
  AMUSE_AFFINITY(core_executor) void share(const Filter& filter);

  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t hop_limited = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  AMUSE_AFFINITY(core_executor) void forward(const Event& e);

  EventBus& from_;
  EventBus& to_;
  FederationConfig config_;
  std::vector<std::uint64_t> subscriptions_;
  Stats stats_;
};

}  // namespace amuse
