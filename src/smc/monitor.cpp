#include "smc/monitor.hpp"

namespace amuse {

SelfMonitor::SelfMonitor(Executor& executor, SelfManagedCell& cell,
                         SelfMonitorConfig config)
    : executor_(executor), cell_(cell), config_(std::move(config)) {}

SelfMonitor::~SelfMonitor() { executor_.cancel(timer_); }

void SelfMonitor::start() {
  if (running_) return;
  running_ = true;
  last_published_ = cell_.bus().stats().published;
  timer_ = executor_.schedule_after(config_.interval, [this] {
    timer_ = kNoTimer;
    tick();
  });
}

void SelfMonitor::stop() {
  running_ = false;
  executor_.cancel(timer_);
  timer_ = kNoTimer;
}

void SelfMonitor::tick() {
  if (!running_) return;
  const EventBus::Stats& bus = cell_.bus().stats();
  double rate = static_cast<double>(bus.published - last_published_) /
                to_seconds(config_.interval);
  last_published_ = bus.published;

  Event health(config_.event_type);
  health.set("members",
             static_cast<std::int64_t>(cell_.bus().members().size()));
  health.set("published_total", static_cast<std::int64_t>(bus.published));
  health.set("event_rate", rate);
  health.set("deliveries_total", static_cast<std::int64_t>(bus.deliveries));
  health.set("denied_total",
             static_cast<std::int64_t>(bus.denied_publish +
                                       bus.denied_subscribe));
  health.set("max_backlog",
             static_cast<std::int64_t>(cell_.bus().max_proxy_backlog()));
  health.set("policy_triggers",
             static_cast<std::int64_t>(cell_.obligations().stats().triggers));
  ++reports_;
  cell_.bus().publish_local(std::move(health));

  timer_ = executor_.schedule_after(config_.interval, [this] {
    timer_ = kNoTimer;
    tick();
  });
}

}  // namespace amuse
