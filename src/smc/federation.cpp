#include "smc/federation.hpp"

#include "bus/interest_table.hpp"

namespace amuse {

FederationBridge::FederationBridge(EventBus& from, EventBus& to)
    : from_(from), to_(to) {
  // Both ends stamp + dedup from now on: every event that will ever cross
  // this bridge needs an origin, and the destination must recognise its
  // own events coming home.
  from_.enable_federation();
  to_.enable_federation();
}

FederationBridge::~FederationBridge() {
  for (std::uint64_t sub : subscriptions_) from_.unsubscribe_local(sub);
}

void FederationBridge::share(const Filter& filter) {
  subscriptions_.push_back(from_.subscribe_local_shared(
      filter, [this](const EventPtr& e) { forward(e); }));
}

void FederationBridge::forward(const EventPtr& e) {
  auto origin = static_cast<std::uint64_t>(e->get_int(kFedOriginCellAttr, 0));
  auto seq = static_cast<std::uint64_t>(e->get_int(kFedOriginSeqAttr, 0));
  if (origin != 0) {
    if (last_forwarded_ == std::pair{origin, seq}) {
      ++stats_.local_dups_suppressed;
      return;
    }
    last_forwarded_ = {origin, seq};
    if (origin == to_.bus_id().raw()) {
      ++stats_.loopback_suppressed;
      return;
    }
  }
  ++stats_.forwarded;
  // Zero-copy: the routed instance crosses as-is. Publisher, timestamp and
  // the origin stamp are already set, so the destination bus routes the
  // same object without a copy-on-write restamp — encode-once end to end.
  to_.publish_local(e);
}

}  // namespace amuse
