#include "smc/federation.hpp"

namespace amuse {

FederationBridge::FederationBridge(EventBus& from, EventBus& to,
                                   FederationConfig config)
    : from_(from), to_(to), config_(std::move(config)) {}

FederationBridge::~FederationBridge() {
  for (std::uint64_t sub : subscriptions_) from_.unsubscribe_local(sub);
}

void FederationBridge::share(const Filter& filter) {
  subscriptions_.push_back(
      from_.subscribe_local(filter, [this](const Event& e) { forward(e); }));
}

void FederationBridge::forward(const Event& e) {
  std::int64_t hops = e.get_int(config_.hop_attr, 0);
  if (hops >= config_.max_hops) {
    ++stats_.hop_limited;
    return;
  }
  Event out = e;
  out.set(config_.hop_attr, hops + 1);
  out.set("x-fed-origin", static_cast<std::int64_t>(
                              e.publisher().is_nil()
                                  ? from_.bus_id().raw()
                                  : e.publisher().raw()));
  ++stats_.forwarded;
  to_.publish_local(std::move(out));
}

}  // namespace amuse
