#include "smc/cell.hpp"

#include "proxy/forwarding_proxy.hpp"

namespace amuse {

SelfManagedCell::SelfManagedCell(Executor& executor,
                                 std::shared_ptr<Transport> bus_endpoint,
                                 std::shared_ptr<Transport> discovery_endpoint,
                                 SmcCellConfig config)
    : config_(std::move(config)) {
  bus_ = std::make_unique<EventBus>(executor, std::move(bus_endpoint),
                                    config_.bus);

  DiscoveryConfig dc = config_.discovery;
  dc.cell_name = config_.name;
  dc.pre_shared_key = config_.pre_shared_key;
  if (bus_->ha_enabled()) {
    // HA cell: discovery speaks the bus's promotion epoch (beacon and
    // JoinAccept fencing stamps) and yields to a higher-epoch rival.
    dc.epoch = bus_->epoch();
    dc.step_down_on_rival = true;
  }
  discovery_ = std::make_unique<DiscoveryService>(
      executor, std::move(discovery_endpoint), bus_->bus_id(), dc);
  // Split-brain resolution: a rival core with a higher epoch deposes this
  // one — the bus fences itself (sheds-and-accounts instead of routing)
  // and drops its proxies so no stale incarnation delivers again.
  discovery_->set_on_deposed([this] { bus_->step_down(); });

  // Membership drives the bus ("the discovery service informs the SMC of
  // the arrival or departure of devices via New Member and Purge Member
  // events").
  discovery_->set_on_new_member(
      [this](const MemberInfo& info) { bus_->add_member(info); });
  discovery_->set_on_purge_member(
      [this](ServiceId id) { bus_->purge_member(id); });
  // Reserve the proxy-channel session at admission so the JoinAccept can
  // carry it: the member's fresh receiver then rejects stale frames from
  // any earlier proxy incarnation racing the rejoin handshake.
  discovery_->set_session_provider(
      [this](ServiceId id) { return bus_->reserve_channel_session(id); });
  discovery_->set_on_recovered([this](const MemberInfo& info) {
    // Liveness evidence restarts any stalled delivery channel immediately
    // instead of waiting for the next retransmission cycle.
    if (auto* proxy = dynamic_cast<ForwardingProxy*>(bus_->proxy_for(info.id))) {
      proxy->resume();
    }
  });
  discovery_->set_publisher([this](Event e) { bus_->publish_local(std::move(e)); });

  auth_ = std::make_unique<AuthorisationService>(store_);
  if (config_.enforce_authorisation) {
    bus_->set_authoriser(auth_->authoriser());
  }
  engine_ = std::make_unique<ObligationEngine>(*bus_, store_);
  deployer_ = std::make_unique<PolicyDeployer>(*bus_, store_);
}

void SelfManagedCell::start() {
  engine_->start();
  deployer_->start();
  discovery_->start();
}

void SelfManagedCell::stop() { discovery_->stop(); }

void SelfManagedCell::load_policies(const std::string& text) {
  store_.load_text(text);
}

}  // namespace amuse
