// FederationGateway: peer-to-peer cell composition *over the network*.
//
// FederationBridge (smc/federation.hpp) connects two buses in one address
// space; a gateway is the deployable version — a dual-homed service that
// is simultaneously an ordinary member of two cells (it discovers, joins,
// heartbeats and re-joins each like any other member) and re-publishes
// events matching its export filters from one cell into the other. Each
// direction is an independent gateway instance. Hop counts terminate
// federation loops exactly as in the in-process bridge.
#pragma once

#include "smc/member.hpp"

namespace amuse {

struct GatewayConfig {
  int max_hops = 2;
  std::string hop_attr = "x-fed-hops";
  std::string origin_attr = "x-fed-origin";
};

class FederationGateway {
 public:
  /// Forwards `from` → `to`. Both members are owned by the caller and must
  /// outlive the gateway; the caller also start()s them.
  FederationGateway(SmcMember& from, SmcMember& to,
                    GatewayConfig config = {})
      : from_(from), to_(to), config_(std::move(config)) {}

  /// Exports events matching `filter` into the destination cell. Durable
  /// across re-joins (SmcMember re-registers subscriptions). Both members
  /// must be owned by the same executor: forward() republishes directly.
  AMUSE_AFFINITY(member_executor) void share(const Filter& filter) {
    subscriptions_.push_back(
        from_.subscribe(filter, [this](const Event& e) { forward(e); }));
  }

  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t hop_limited = 0;
    std::uint64_t dropped_disconnected = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  AMUSE_AFFINITY(member_executor) void forward(const Event& e) {
    std::int64_t hops = e.get_int(config_.hop_attr, 0);
    if (hops >= config_.max_hops) {
      ++stats_.hop_limited;
      return;
    }
    Event out = e;
    out.set(config_.hop_attr, hops + 1);
    out.set(config_.origin_attr,
            static_cast<std::int64_t>(e.publisher().raw()));
    if (!to_.publish(std::move(out))) {
      // Destination cell out of range and the offline buffer is full.
      ++stats_.dropped_disconnected;
      return;
    }
    ++stats_.forwarded;
  }

  SmcMember& from_;
  SmcMember& to_;
  GatewayConfig config_;
  std::vector<std::uint64_t> subscriptions_;
  Stats stats_;
};

}  // namespace amuse
