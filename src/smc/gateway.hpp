// FederationGateway: peer-to-peer cell composition *over the network*.
//
// FederationBridge (smc/federation.hpp) connects two buses in one address
// space; a gateway is the deployable version — a dual-homed service that
// is simultaneously an ordinary member of two cells (it discovers, joins,
// heartbeats and re-joins each like any other member) and forwards events
// from one cell into the other. Each direction is an independent gateway
// instance over the same two members.
//
// A gateway is a first-class routing peer, not a blind re-publisher: its
// members join with role "gateway" (kGatewayRole), so each cell's bus
// pushes it that cell's aggregated interest table (the compacted,
// split-horizon union of downstream subscriptions — bus/interest_table.hpp).
// Whenever the *destination* cell's table changes, the gateway reconciles
// its subscriptions in the *source* cell to exactly that set: only events
// somebody downstream actually wants ever cross the link (Gryphon-style
// information-flow brokering). Subscriptions are durable across source-cell
// re-joins (SmcMember re-registers them), and a destination-cell re-join
// always delivers a fresh full table (the bus pushes one on admission, and
// the mirror requests a resync on any divergence) — a rejoined incarnation
// can never route on a stale table.
//
// Loop termination and multi-path dedup ride the immutable origin stamp
// each bus puts on routed events (DESIGN.md §11); the gateway forwards the
// stamp untouched and never mutates the event beyond the destination
// client's copy-on-write publisher restamp.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "smc/member.hpp"

namespace amuse {

class FederationGateway {
 public:
  /// Forwards `from` → `to`. Both members are owned by the caller and must
  /// outlive the gateway; the caller also start()s them. Both must be
  /// owned by the same executor: forward() republishes directly. Installs
  /// itself as `to`'s interest listener — a member may be the destination
  /// of at most one gateway.
  FederationGateway(SmcMember& from, SmcMember& to);

  FederationGateway(const FederationGateway&) = delete;
  FederationGateway& operator=(const FederationGateway&) = delete;

  /// Static export: events matching `filter` cross regardless of the
  /// destination cell's interest table (bootstrap / policy-pinned feeds).
  /// Durable across re-joins.
  AMUSE_AFFINITY(member_executor) void share(const Filter& filter);

  struct Stats {
    std::uint64_t forwarded = 0;
    /// Events that originated in the destination cell: forwarding them
    /// back would only feed its origin dedup, so they never cross.
    std::uint64_t loopback_suppressed = 0;
    /// Same delivery matched several of our subscriptions — forwarded once.
    std::uint64_t local_dups_suppressed = 0;
    /// Destination out of range and its offline buffer full.
    std::uint64_t dropped_disconnected = 0;
    /// Interest pushes applied to the source-cell subscription set.
    std::uint64_t interest_reconciles = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Interest-driven subscriptions currently registered in the source cell.
  [[nodiscard]] std::size_t interest_subscriptions() const {
    return interest_subs_.size();
  }

 private:
  /// Re-aims the source-cell subscription set at the destination cell's
  /// aggregated interest (re-compacted by the bus on every update).
  AMUSE_AFFINITY(member_executor) void reconcile(const FilterSet& interests);
  AMUSE_AFFINITY(member_executor) void forward(const Event& e);

  SmcMember& from_;
  SmcMember& to_;
  std::vector<std::uint64_t> static_subs_;
  // Canonical filter encoding → durable subscription id in `from_`.
  std::map<Bytes, std::uint64_t> interest_subs_;
  // (origin cell, seq) of the last forwarded event: handler invocations
  // for one delivery are consecutive, so one element dedups overlapping
  // subscriptions exactly.
  std::pair<std::uint64_t, std::uint64_t> last_forwarded_{0, 0};
  Stats stats_;
};

}  // namespace amuse
