#include "smc/gateway.hpp"

#include "bus/interest_table.hpp"
#include "common/log.hpp"

namespace amuse {
namespace {
const Logger kLog("smc.gateway");
}

FederationGateway::FederationGateway(SmcMember& from, SmcMember& to)
    : from_(from), to_(to) {
  to_.set_on_interest(
      [this](const FilterSet& interests) { reconcile(interests); });
}

void FederationGateway::share(const Filter& filter) {
  static_subs_.push_back(
      from_.subscribe(filter, [this](const Event& e) { forward(e); }));
}

void FederationGateway::reconcile(const FilterSet& interests) {
  ++stats_.interest_reconciles;
  std::map<Bytes, const Filter*> want;
  for (const Filter& f : interests.filters()) {
    want.emplace(FilterSet::encoding_of(f), &f);
  }
  // Interests the destination no longer holds: stop importing them.
  for (auto it = interest_subs_.begin(); it != interest_subs_.end();) {
    if (want.contains(it->first)) {
      ++it;
      continue;
    }
    from_.unsubscribe(it->second);
    it = interest_subs_.erase(it);
  }
  // New downstream interests: subscribe for them in the source cell.
  for (const auto& [key, filter] : want) {
    if (interest_subs_.contains(key)) continue;
    interest_subs_.emplace(
        key,
        from_.subscribe(*filter, [this](const Event& e) { forward(e); }));
  }
  kLog.debug("gateway ", from_.id().to_string(), "→", to_.id().to_string(),
             " reconciled to ", std::to_string(interest_subs_.size()),
             " interests");
}

void FederationGateway::forward(const Event& e) {
  auto origin = static_cast<std::uint64_t>(e.get_int(kFedOriginCellAttr, 0));
  auto seq = static_cast<std::uint64_t>(e.get_int(kFedOriginSeqAttr, 0));
  if (origin != 0) {
    if (last_forwarded_ == std::pair{origin, seq}) {
      // Overlapping subscriptions matched the same delivery.
      ++stats_.local_dups_suppressed;
      return;
    }
    last_forwarded_ = {origin, seq};
    BusClient* dst = to_.client();
    if (dst != nullptr && origin == dst->bus().raw()) {
      ++stats_.loopback_suppressed;
      return;
    }
  }
  // One copy end-to-end: the destination client's copy-on-write restamp
  // assigns our publisher identity; the origin stamp crosses untouched.
  if (!to_.publish(Event(e))) {
    ++stats_.dropped_disconnected;
    return;
  }
  ++stats_.forwarded;
}

}  // namespace amuse
