// SmcMember: the member-side runtime for services that speak the bus wire
// protocol (nurse consoles, analysis services, smart sensors).
//
// Owns one transport endpoint and muxes it between the discovery agent
// (beacons, handshake, heartbeats) and the bus client (reliable event
// traffic). Subscriptions registered here are *durable across re-joins*:
// when the member roams out of range and later re-joins the cell (with a
// fresh session), every subscription is re-registered automatically.
// Publishes while out of cell range are buffered (bounded) and flushed on
// (re-)join. The same buffer absorbs publishes while the bus announces
// flow-control pressure: a well-behaved publisher defers instead of piling
// more data onto an overloaded cell, and flushes on release.
#pragma once

#include <deque>
#include <memory>

#include "bus/bus_client.hpp"
#include "bus/replication.hpp"
#include "common/annotations.hpp"
#include "discovery/discovery_agent.hpp"

namespace amuse {

struct SmcMemberConfig {
  DiscoveryAgentConfig agent;
  ReliableChannelConfig channel;
  bool quench = false;
  /// Events buffered while not joined (0 = drop when out of range).
  std::size_t offline_buffer = 256;
};

class SmcMember {
 public:
  using Handler = BusClient::Handler;

  SmcMember(Executor& executor, std::shared_ptr<Transport> transport,
            SmcMemberConfig config);
  ~SmcMember();

  SmcMember(const SmcMember&) = delete;
  SmcMember& operator=(const SmcMember&) = delete;

  /// Starts searching for the cell.
  AMUSE_AFFINITY(member_executor) void start();
  /// Graceful leave.
  AMUSE_AFFINITY(member_executor) void leave();

  AMUSE_AFFINITY(member_executor)
  std::uint64_t subscribe(const Filter& filter, Handler handler);
  AMUSE_AFFINITY(member_executor) void unsubscribe(std::uint64_t id);
  /// Publishes now if joined and unpressured, otherwise buffers (returns
  /// false when the event was dropped because the buffer is full or the
  /// publish was quenched).
  AMUSE_AFFINITY(member_executor) bool publish(Event event);
  /// Shared-instance variant for forwarders (federation gateways): the
  /// client pays exactly one copy-on-write restamp; all other attributes —
  /// including the federation origin stamp — forward untouched.
  AMUSE_AFFINITY(member_executor) bool publish(const EventPtr& event);

  [[nodiscard]] bool joined() const { return client_ != nullptr; }
  [[nodiscard]] ServiceId id() const { return transport_->local_id(); }
  [[nodiscard]] DiscoveryAgent& agent() { return *agent_; }
  /// Null while not joined.
  [[nodiscard]] BusClient* client() { return client_.get(); }

  void set_on_joined(std::function<void()> fn) { on_joined_ = std::move(fn); }
  void set_on_left(std::function<void()> fn) { on_left_ = std::move(fn); }
  /// Forwarded from the bus client: true = the cell asked us to back off.
  void set_on_pressure(std::function<void(bool)> fn) {
    on_pressure_ = std::move(fn);
  }
  /// Forwarded from the bus client: fires with the cell's aggregated
  /// interest table after every cleanly applied push (gateway members
  /// only). Survives re-joins — the callback is re-installed on every
  /// fresh client, and admission always pushes a full table.
  void set_on_interest(BusClient::InterestFn fn) {
    on_interest_ = std::move(fn);
    if (client_) client_->set_on_interest(on_interest_);
  }

  /// Events waiting in the offline/pressure buffer.
  [[nodiscard]] std::size_t offline_pending() const { return offline_.size(); }

  struct Stats {
    std::uint64_t joins = 0;
    std::uint64_t buffered = 0;
    std::uint64_t buffer_dropped = 0;
    std::uint64_t flushed = 0;
    std::uint64_t pressure_deferrals = 0;  // publishes buffered under pressure
    std::uint64_t ha_duplicates_dropped = 0;  // HA (epoch, seq) dedup hits —
                                              // re-deliveries already seen
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct DesiredSub {
    Filter filter;
    Handler handler;
  };

  AMUSE_AFFINITY(member_executor)
  void on_cell_joined(ServiceId bus, std::uint32_t session);
  AMUSE_AFFINITY(member_executor) void on_cell_left();
  AMUSE_AFFINITY(member_executor) void flush_offline();

  Executor& executor_;
  std::shared_ptr<Transport> transport_;
  SmcMemberConfig config_;
  std::unique_ptr<DiscoveryAgent> agent_;
  std::unique_ptr<BusClient> client_;
  std::map<std::uint64_t, DesiredSub> desired_;
  std::map<std::uint64_t, std::uint64_t> live_ids_;  // desired id → client id
  std::uint64_t next_id_ = 1;
  std::deque<Event> offline_;
  std::function<void()> on_joined_;
  std::function<void()> on_left_;
  std::function<void(bool)> on_pressure_;
  BusClient::InterestFn on_interest_;
  // HA re-delivery dedup on the (epoch, seq) origin stamp. Deliberately
  // *outside* the per-join client: exactly-once across a failover depends
  // on remembering pre-crash deliveries through the re-home.
  OriginDedup ha_dedup_;
  // Canonical digest of the quench table held at the last leave; presented
  // in the next JOIN_RESP so an unchanged table is not re-pushed.
  Digest256 quench_stash_{};
  Stats stats_;
};

}  // namespace amuse
