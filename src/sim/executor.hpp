// Executor: the event-loop abstraction every SMC component is written
// against. Components never call OS timers or sleep; they schedule closures.
// Two implementations exist:
//  - SimExecutor: discrete-event virtual time (all tests and benches);
//  - RealExecutor: wall-clock time (the real-UDP demo).
//
// Threading model (DESIGN.md §10): every component is owned by exactly one
// executor and its state is only touched from that executor's consumer
// thread. post()/schedule_at()/cancel() are the *only* thread-safe entry
// points; everything else an implementation or component exposes is
// consumer-thread-only. AMUSE_ASSERT_ON_EXECUTOR below is the debug-build
// spot-check of that rule; scripts/check_affinity.py is the static proof.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/annotations.hpp"
#include "sim/time.hpp"

namespace amuse {

using Task = std::function<void()>;

/// Handle for cancelling a scheduled task. 0 is "no timer".
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Executor {
 public:
  virtual ~Executor();

  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Current time on this executor's clock.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Runs `fn` as soon as possible, after already-queued work. This is the
  /// one sanctioned cross-thread hop: on RealExecutor, post (and
  /// schedule_at/cancel) are callable from any thread — the UDP receive
  /// thread hands datagrams over with it. SimExecutor is strictly
  /// single-threaded (discrete-event determinism), so the question never
  /// arises there.
  virtual void post(Task fn) = 0;

  /// Runs `fn` at absolute time `t` (or immediately if `t` has passed).
  virtual TimerId schedule_at(TimePoint t, Task fn) = 0;

  /// Runs `fn` after `delay`.
  TimerId schedule_after(Duration delay, Task fn);

  /// Cancels a pending timer. Cancelling an already-fired or unknown id is
  /// a harmless no-op (components race their own timers against packets).
  virtual void cancel(TimerId id) = 0;

  /// True when the calling thread may touch state owned by this executor:
  /// either no run loop is active (the single-threaded setup / teardown /
  /// test-driver phases), or the calling thread is the one inside the
  /// loop. The affinity assertions below are built on this; it can only
  /// prove a *violation* (a foreign thread calling in while the loop is
  /// live), never the absence of one.
  [[nodiscard]] bool on_executor_thread() const {
    if (loop_depth_.load(std::memory_order_acquire) == 0) return true;
    return loop_thread_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

 protected:
  /// RAII marker implementations hold while running tasks on the calling
  /// thread; makes that thread the executor's consumer for the duration.
  /// Re-entrant on the same thread (nested run()s share the identity).
  class LoopGuard {
   public:
    explicit LoopGuard(Executor& ex) : ex_(ex) {
      ex_.loop_thread_.store(std::this_thread::get_id(),
                             std::memory_order_relaxed);
      ex_.loop_depth_.fetch_add(1, std::memory_order_release);
    }
    ~LoopGuard() { ex_.loop_depth_.fetch_sub(1, std::memory_order_release); }
    LoopGuard(const LoopGuard&) = delete;
    LoopGuard& operator=(const LoopGuard&) = delete;

   private:
    Executor& ex_;
  };

 private:
  // Identity of the thread inside the run loop, and how many nested loop
  // levels are live. Written by the consumer thread only; read by any
  // thread through on_executor_thread().
  std::atomic<int> loop_depth_{0};
  std::atomic<std::thread::id> loop_thread_{};
};

namespace detail {
/// Logs the violation and aborts: a thread that is not the owning
/// executor's consumer called into single-owner protocol state.
[[noreturn]] void affinity_violation(const char* what);
}  // namespace detail

/// Debug-build runtime check of an AMUSE_AFFINITY(...) annotation: aborts
/// when the calling thread is provably not `ex`'s consumer thread while
/// the loop is live. Compiled to nothing when AMUSE_AFFINITY_ASSERTS is
/// off (cmake -DAMUSE_AFFINITY_ASSERTS=OFF); on by default — the cost is
/// two relaxed atomic loads.
#if defined(AMUSE_AFFINITY_ASSERTS)
#define AMUSE_ASSERT_ON_EXECUTOR(ex, what)                                   \
  do {                                                                       \
    if (!(ex).on_executor_thread()) ::amuse::detail::affinity_violation(what); \
  } while (0)
#else
#define AMUSE_ASSERT_ON_EXECUTOR(ex, what) \
  do {                                     \
    (void)sizeof(ex);                      \
  } while (0)
#endif

}  // namespace amuse
