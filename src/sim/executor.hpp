// Executor: the event-loop abstraction every SMC component is written
// against. Components never call OS timers or sleep; they schedule closures.
// Two implementations exist:
//  - SimExecutor: discrete-event virtual time (all tests and benches);
//  - RealExecutor: wall-clock time (the real-UDP demo).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.hpp"

namespace amuse {

using Task = std::function<void()>;

/// Handle for cancelling a scheduled task. 0 is "no timer".
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Executor {
 public:
  virtual ~Executor();

  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Current time on this executor's clock.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Runs `fn` as soon as possible, after already-queued work.
  virtual void post(Task fn) = 0;

  /// Runs `fn` at absolute time `t` (or immediately if `t` has passed).
  virtual TimerId schedule_at(TimePoint t, Task fn) = 0;

  /// Runs `fn` after `delay`.
  TimerId schedule_after(Duration delay, Task fn);

  /// Cancels a pending timer. Cancelling an already-fired or unknown id is
  /// a harmless no-op (components race their own timers against packets).
  virtual void cancel(TimerId id) = 0;
};

}  // namespace amuse
