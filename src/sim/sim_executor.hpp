// Discrete-event simulation executor.
//
// A single priority queue of (time, sequence, task). Tasks scheduled for the
// same instant run in scheduling order (the sequence number breaks ties), so
// simulations are fully deterministic for a fixed seed — which is what lets
// the property tests assert exactly-once/FIFO semantics under randomised
// loss without flaky failures.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "sim/executor.hpp"

namespace amuse {

class SimExecutor final : public Executor {
 public:
  SimExecutor() = default;

  [[nodiscard]] TimePoint now() const override { return now_; }
  void post(Task fn) override;
  TimerId schedule_at(TimePoint t, Task fn) override;
  void cancel(TimerId id) override;

  /// Runs one queued task (advancing the clock to it). False if idle.
  bool step();

  /// Runs until the queue is empty or `limit` tasks have run.
  /// Returns the number of tasks executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs every task scheduled strictly before or at `deadline`; leaves the
  /// clock at `deadline` even if the queue drained early.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t tasks_executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    TimerId id;
    // Ordered as a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Tasks live in a side map so cancel() is O(log n) without heap surgery:
  // a popped entry whose id is absent from tasks_ was cancelled.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::map<TimerId, Task> tasks_;
  TimePoint now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace amuse
