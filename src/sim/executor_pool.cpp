#if defined(__linux__) && !defined(_GNU_SOURCE)
#define _GNU_SOURCE  // pthread_setaffinity_np / CPU_SET
#endif

#include "sim/executor_pool.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace amuse {
namespace {

bool pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

ExecutorPool::ExecutorPool(ExecutorPoolOptions options) {
  std::size_t n = options.shards;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Threads start after every Shard exists so shard() is safe the moment
  // the constructor returns.
  for (std::size_t i = 0; i < n; ++i) {
    Shard* s = shards_[i].get();
    bool pin = options.pin_threads;
    s->thread = std::thread([this, s, i, pin] {
      if (pin && pin_current_thread(i)) {
        pinned_.fetch_add(1, std::memory_order_relaxed);
      }
      s->ex.run();
    });
  }
}

ExecutorPool::~ExecutorPool() { stop(); }

std::size_t ExecutorPool::shard_index(ServiceId peer) const {
  // splitmix64: cheap, well-mixed, and a pure function of the id — the
  // stability guarantee channels rely on across rejoin.
  std::uint64_t x = peer.raw() + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

void ExecutorPool::stop() {
  if (stopped_.exchange(true)) return;
  // A direct stop() racing a consumer thread that has not yet *entered*
  // run() would be cleared at loop entry and the join below would hang.
  // Posting a task that stops the loop is race-free in both orders: an
  // already-running loop drains and executes it, a not-yet-started loop
  // finds it queued on entry.
  for (auto& s : shards_) {
    RealExecutor* ex = &s->ex;
    ex->post([ex] { ex->stop(); });
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

}  // namespace amuse
