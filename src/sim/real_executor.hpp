// Wall-clock executor for running the SMC stack on a real network (the
// prototype's UDP configuration, paper §IV). Single consumer thread calls
// run(); producers (e.g. the UDP receive thread) post from any thread.
//
// This is one of the tree's three genuinely cross-thread surfaces
// (DESIGN.md §10): every field below is guarded by mu_, and the capability
// annotations let clang's -Wthread-safety prove it.
#pragma once

#include <cstdint>
#include <map>

#include "common/annotations.hpp"
#include "sim/executor.hpp"

namespace amuse {

/// Observability for the wakeup economics of the consumer loop (see run()):
/// one wakeup should amortise over many tasks when producers post in bursts
/// (the batched UDP receive path posts one task per recvmmsg harvest).
/// Counters are written by the consumer thread under the queue mutex and
/// snapshot under the same mutex — totals are exact, not relaxed.
struct RealExecutorStats {
  std::uint64_t tasks_run = 0;  // tasks executed by run()/run_for()
  std::uint64_t wakeups = 0;    // drain cycles that ran at least one task
  std::uint64_t max_drain = 0;  // largest batch drained per lock acquisition
};

class RealExecutor final : public Executor {
 public:
  RealExecutor();

  [[nodiscard]] TimePoint now() const override;
  void post(Task fn) override;
  TimerId schedule_at(TimePoint t, Task fn) override;
  void cancel(TimerId id) override;

  [[nodiscard]] RealExecutorStats stats() const;

  /// Runs tasks on the calling thread until stop() is called. Every lock
  /// acquisition drains the whole run of currently-due tasks into a local
  /// batch and executes them outside the lock, so a burst of N posts costs
  /// one wakeup + one mutex round instead of N. A task that posts more work
  /// never extends the in-progress batch (the new work is picked up on the
  /// next drain, after the stop/deadline checks), and stop() takes effect
  /// at the next drain boundary — already-drained tasks still run, exactly
  /// as an already-popped task did before.
  void run();
  /// Runs tasks until `d` of wall time has elapsed.
  void run_for(Duration d);
  /// Wakes a loop currently inside run()/run_for() and makes it return.
  /// Thread-safe. A stop() that lands before the loop has entered is
  /// cleared when the loop starts — callers who need "stop as soon as it
  /// runs" should post a task that calls stop() instead.
  void stop();

 private:
  struct Key {
    TimePoint when;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      return when != o.when ? when < o.when : seq < o.seq;
    }
  };

  void run_until_wall(TimePoint deadline, bool has_deadline);

  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  CondVar cv_;
  std::map<Key, std::pair<TimerId, Task>> queue_ AMUSE_GUARDED_BY(mu_);
  std::map<TimerId, Key> by_id_ AMUSE_GUARDED_BY(mu_);
  std::uint64_t next_seq_ AMUSE_GUARDED_BY(mu_) = 1;
  std::uint64_t next_id_ AMUSE_GUARDED_BY(mu_) = 1;
  // stop() notifies under the lock so the wakeup cannot slip between the
  // loop's check and its cv_ wait.
  bool stop_ AMUSE_GUARDED_BY(mu_) = false;
  RealExecutorStats stats_ AMUSE_GUARDED_BY(mu_);
};

}  // namespace amuse
