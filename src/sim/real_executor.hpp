// Wall-clock executor for running the SMC stack on a real network (the
// prototype's UDP configuration, paper §IV). Single consumer thread calls
// run(); producers (e.g. the UDP receive thread) post from any thread.
//
// This is one of the tree's three genuinely cross-thread surfaces
// (DESIGN.md §10): every field below is guarded by mu_, and the capability
// annotations let clang's -Wthread-safety prove it.
#pragma once

#include <cstdint>
#include <map>

#include "common/annotations.hpp"
#include "sim/executor.hpp"

namespace amuse {

class RealExecutor final : public Executor {
 public:
  RealExecutor();

  [[nodiscard]] TimePoint now() const override;
  void post(Task fn) override;
  TimerId schedule_at(TimePoint t, Task fn) override;
  void cancel(TimerId id) override;

  /// Runs tasks on the calling thread until stop() is called.
  void run();
  /// Runs tasks until `d` of wall time has elapsed.
  void run_for(Duration d);
  /// Wakes a loop currently inside run()/run_for() and makes it return.
  /// Thread-safe. A stop() that lands before the loop has entered is
  /// cleared when the loop starts — callers who need "stop as soon as it
  /// runs" should post a task that calls stop() instead.
  void stop();

 private:
  struct Key {
    TimePoint when;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      return when != o.when ? when < o.when : seq < o.seq;
    }
  };

  void run_until_wall(TimePoint deadline, bool has_deadline);

  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  CondVar cv_;
  std::map<Key, std::pair<TimerId, Task>> queue_ AMUSE_GUARDED_BY(mu_);
  std::map<TimerId, Key> by_id_ AMUSE_GUARDED_BY(mu_);
  std::uint64_t next_seq_ AMUSE_GUARDED_BY(mu_) = 1;
  std::uint64_t next_id_ AMUSE_GUARDED_BY(mu_) = 1;
  // stop() notifies under the lock so the wakeup cannot slip between the
  // loop's check and its cv_ wait.
  bool stop_ AMUSE_GUARDED_BY(mu_) = false;
};

}  // namespace amuse
