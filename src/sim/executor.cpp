#include "sim/executor.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace amuse {

Executor::~Executor() = default;

TimerId Executor::schedule_after(Duration delay, Task fn) {
  return schedule_at(now() + delay, std::move(fn));
}

namespace detail {

[[noreturn]] void affinity_violation(const char* what) {
  // Deliberately fatal: a foreign thread inside single-owner protocol
  // state is a data race in flight, not a recoverable condition. The
  // message is the death-test anchor (tests/affinity_test.cpp).
  Logger log("affinity");
  log.error("affinity violation: ", what,
            " called off its owning executor thread while the loop is "
            "running (post() the call instead)");
  std::abort();
}

}  // namespace detail

}  // namespace amuse
