#include "sim/executor.hpp"

namespace amuse {

Executor::~Executor() = default;

TimerId Executor::schedule_after(Duration delay, Task fn) {
  return schedule_at(now() + delay, std::move(fn));
}

}  // namespace amuse
