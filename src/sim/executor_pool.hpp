// ExecutorPool: per-core sharding of the real-network datapath
// (DESIGN.md §12).
//
// Each shard is a RealExecutor with a dedicated consumer thread, pinned
// best-effort to one CPU. Protocol components (channels, proxies, members)
// are assigned to shards by peer ServiceId through a stable hash, so:
//   - all state for one peer lives on exactly one shard — the single-owner
//     threading model of DESIGN.md §10 carries over unchanged, shard by
//     shard (AMUSE_AFFINITY labels + AMUSE_ASSERT_ON_EXECUTOR still prove
//     ownership, now against the shard's consumer thread);
//   - per-peer FIFO is preserved — a peer's datagram batches are always
//     posted to the same shard;
//   - the assignment survives leave/rejoin: the hash is a pure function of
//     the 48-bit ServiceId, with no allocation table to drift.
//
// The pool starts its consumer threads in the constructor and stops/joins
// them in the destructor (or an explicit stop()). Everything here is
// thread-safe: shard lookup is pure, and the RealExecutors' post()/
// schedule_at()/cancel() are the sanctioned cross-thread entry points.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/service_id.hpp"
#include "sim/real_executor.hpp"

namespace amuse {

struct ExecutorPoolOptions {
  /// Number of shards; 0 = one per hardware thread (at least 1).
  std::size_t shards = 0;
  /// Pin each shard's consumer thread to a CPU (Linux, best-effort: pinning
  /// failure is recorded, never fatal — containers often mask CPUs).
  bool pin_threads = true;
};

class ExecutorPool {
 public:
  explicit ExecutorPool(ExecutorPoolOptions options = {});
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  [[nodiscard]] RealExecutor& shard(std::size_t i) { return shards_[i]->ex; }

  /// Stable shard assignment for a peer: splitmix64 over the raw 48-bit id,
  /// reduced mod size(). Same id -> same shard, across rejoins and across
  /// pool instances of the same size.
  [[nodiscard]] std::size_t shard_index(ServiceId peer) const;
  [[nodiscard]] RealExecutor& shard_for(ServiceId peer) {
    return shard(shard_index(peer));
  }

  /// Number of consumer threads successfully pinned to a CPU.
  [[nodiscard]] std::size_t pinned_threads() const {
    return pinned_.load(std::memory_order_relaxed);
  }

  /// Stops every shard's run loop and joins the threads. Idempotent; the
  /// destructor calls it. Tasks already drained by a shard still finish
  /// (RealExecutor::stop() semantics).
  void stop();

 private:
  struct Shard {
    RealExecutor ex;
    std::thread thread;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> pinned_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace amuse
