#include "sim/sim_executor.hpp"

#include <utility>

namespace amuse {

void SimExecutor::post(Task fn) { (void)schedule_at(now_, std::move(fn)); }

TimerId SimExecutor::schedule_at(TimePoint t, Task fn) {
  if (t < now_) t = now_;
  TimerId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  tasks_.emplace(id, std::move(fn));
  return id;
}

void SimExecutor::cancel(TimerId id) { tasks_.erase(id); }

bool SimExecutor::step() {
  LoopGuard guard(*this);  // the calling thread is the consumer while a
                           // task runs (affinity assertions key off this)
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    auto it = tasks_.find(e.id);
    if (it == tasks_.end()) continue;  // cancelled
    Task fn = std::move(it->second);
    tasks_.erase(it);
    now_ = e.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t SimExecutor::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void SimExecutor::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing time.
    Entry e = queue_.top();
    if (!tasks_.contains(e.id)) {
      queue_.pop();
      continue;
    }
    if (e.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace amuse
