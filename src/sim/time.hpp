// Simulation time. One nanosecond resolution, chrono-compatible so the same
// component code runs unchanged on the virtual clock (SimExecutor) and the
// wall clock (RealExecutor).
#pragma once

#include <chrono>
#include <cstdint>

namespace amuse {

/// Chrono clock tag for virtual time. Epoch = simulation start.
struct SimClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = std::chrono::nanoseconds;
  using time_point = std::chrono::time_point<SimClock>;
  static constexpr bool is_steady = true;
};

using Duration = SimClock::duration;
using TimePoint = SimClock::time_point;

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::seconds;

/// Seconds as a double, for reporting.
[[nodiscard]] inline double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Milliseconds as a double, for reporting (the paper's figures use ms).
[[nodiscard]] inline double to_millis(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

[[nodiscard]] inline Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

}  // namespace amuse
