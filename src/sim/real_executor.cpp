#include "sim/real_executor.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace amuse {

RealExecutor::RealExecutor() : epoch_(std::chrono::steady_clock::now()) {}

TimePoint RealExecutor::now() const {
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return TimePoint(std::chrono::duration_cast<Duration>(elapsed));
}

void RealExecutor::post(Task fn) { (void)schedule_at(now(), std::move(fn)); }

TimerId RealExecutor::schedule_at(TimePoint t, Task fn) {
  MutexLock lock(mu_);
  TimerId id = next_id_++;
  Key key{t, next_seq_++};
  queue_.emplace(key, std::make_pair(id, std::move(fn)));
  by_id_.emplace(id, key);
  cv_.notify_all();
  return id;
}

void RealExecutor::cancel(TimerId id) {
  MutexLock lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  queue_.erase(it->second);
  by_id_.erase(it);
}

void RealExecutor::run() {
  run_until_wall(TimePoint{}, /*has_deadline=*/false);
}

void RealExecutor::run_for(Duration d) {
  run_until_wall(now() + d, /*has_deadline=*/true);
}

void RealExecutor::run_until_wall(TimePoint deadline, bool has_deadline) {
  LoopGuard guard(*this);  // the calling thread is this executor's consumer
  {
    MutexLock lock(mu_);
    stop_ = false;
  }
  std::vector<Task> batch;
  for (;;) {
    batch.clear();
    {
      MutexLock lock(mu_);
      for (;;) {
        if (stop_) return;
        if (has_deadline && now() >= deadline) return;
        // Drain the whole run of due tasks under this one lock acquisition
        // (the wakeup-economics fix: a burst of posts costs one drain, not
        // one lock round per task). A drained task is past the point of
        // cancellation, exactly like a popped task was before.
        TimePoint due = now();
        while (!queue_.empty() && queue_.begin()->first.when <= due) {
          auto it = queue_.begin();
          batch.push_back(std::move(it->second.second));
          by_id_.erase(it->second.first);
          queue_.erase(it);
        }
        if (!batch.empty()) break;
        auto wall_deadline = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(50);
        if (!queue_.empty()) {
          auto next = epoch_ + queue_.begin()->first.when.time_since_epoch();
          if (next < wall_deadline) wall_deadline = next;
        }
        if (has_deadline) {
          auto dl = epoch_ + deadline.time_since_epoch();
          if (dl < wall_deadline) wall_deadline = dl;
        }
        cv_.wait_until(lock, wall_deadline);
      }
      ++stats_.wakeups;
      stats_.tasks_run += batch.size();
      stats_.max_drain =
          std::max<std::uint64_t>(stats_.max_drain, batch.size());
    }
    for (Task& task : batch) task();
  }
}

RealExecutorStats RealExecutor::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void RealExecutor::stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

}  // namespace amuse
