#include "proxy/forwarding_proxy.hpp"

#include "common/log.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {
const Logger kLog("proxy.forwarding");
}

ForwardingProxy::ForwardingProxy(BusPort& bus, MemberInfo info)
    : Proxy(bus, std::move(info)) {
  channel_ = std::make_unique<ReliableChannel>(
      bus.executor(), bus.bus_id(), member_id(),
      bus.next_channel_session(member_id()),
      bus.channel_config(),
      /*send_packet=*/
      [this](const Packet& p) {
        this->bus().send_datagram(p.dst, p.encode());
      },
      /*deliver=*/
      [this](BytesView message) { on_message(message); },
      /*on_fail=*/
      [this] {
        kLog.debug("member ", member_id().to_string(),
                   " unresponsive; queueing until purge or recovery");
      });
}

void ForwardingProxy::deliver_event(const EncodedEvent& event,
                                    const std::vector<std::uint64_t>& matched) {
  // Encode-once fan-out: only the small per-member header (message type +
  // matched subscription ids) is built here; the event body rides along as
  // the publish-wide shared encoding.
  SharedPayload payload{BusMessage::encode_event_header(matched),
                        event.shared_bytes()};
  if (!channel_->send(std::move(payload))) {
    kLog.warn("outbound queue full for member ", member_id().to_string(),
              "; dropping event ", event.event().type());
  }
}

void ForwardingProxy::on_datagram(BytesView data) {
  std::optional<Packet> p = Packet::decode(data);
  if (!p) return;  // corrupt or foreign frame
  channel_->on_packet(*p);
}

void ForwardingProxy::on_purge() { channel_->reset(); }

void ForwardingProxy::send_quench_update(const std::vector<Filter>& filters) {
  (void)channel_->send(BusMessage::quench_update(filters).encode());
}

std::size_t ForwardingProxy::pending() const {
  return channel_->queued() + channel_->in_flight();
}

void ForwardingProxy::on_message(BytesView message) {
  BusMessage m;
  try {
    m = BusMessage::decode(message);
  } catch (const DecodeError& e) {
    kLog.warn("malformed bus message from ", member_id().to_string(), ": ",
              e.what());
    return;
  }
  switch (m.type) {
    case BusMsgType::kPublish:
      bus().member_publish(member_id(), freeze(std::move(*m.event)));
      break;
    case BusMsgType::kSubscribe:
      bus().member_subscribe(member_id(), m.sub_id, std::move(*m.filter));
      break;
    case BusMsgType::kUnsubscribe:
      bus().member_unsubscribe(member_id(), m.sub_id);
      break;
    case BusMsgType::kEvent:
    case BusMsgType::kQuenchUpdate:
      // Bus-to-member messages are nonsense coming from a member.
      kLog.warn("unexpected ", to_string(m.type), " from member ",
                member_id().to_string());
      break;
  }
}

}  // namespace amuse
