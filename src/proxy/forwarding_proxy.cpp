#include "proxy/forwarding_proxy.hpp"

#include "common/log.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {
const Logger kLog("proxy.forwarding");
}

ForwardingProxy::ForwardingProxy(BusPort& bus, MemberInfo info)
    : Proxy(bus, std::move(info)) {
  channel_ = std::make_unique<ReliableChannel>(
      bus.executor(), bus.bus_id(), member_id(),
      bus.next_channel_session(member_id()),
      bus.channel_config(),
      /*send_packet=*/
      [this](const Packet& p) {
        this->bus().send_datagram(p.dst, p.encode());
      },
      /*deliver=*/
      [this](BytesView message) { on_message(message); },
      /*on_fail=*/
      [this] {
        kLog.debug("member ", member_id().to_string(),
                   " unresponsive; queueing until purge or recovery");
      });
  // One pump round's DATA frames flush through the bus's batch surface
  // (and from there through one sendmmsg on a batching transport).
  channel_->set_send_frames([this](std::vector<Packet>& frames) {
    std::vector<Bytes> encodings;
    encodings.reserve(frames.size());
    for (const Packet& p : frames) encodings.push_back(p.encode());
    this->bus().send_datagram_batch(member_id(), encodings);
  });
  channel_->set_on_shed([this](BytesView message) { on_shed(message); });
  channel_->set_on_pressure([this](bool under_pressure) {
    this->bus().member_pressure(member_id(), under_pressure);
  });
}

void ForwardingProxy::deliver_event(const EncodedEvent& event,
                                    const std::vector<std::uint64_t>& matched) {
  // Encode-once fan-out: only the small per-member header (message type +
  // matched subscription ids) is built here; the event body rides along as
  // the publish-wide shared encoding.
  SharedPayload payload{BusMessage::encode_event_header(matched),
                        event.shared_bytes()};
  if (!channel_->send(std::move(payload))) {
    // The channel counted the drop and fired the shed tap (the bus's
    // notify_shed already ran): accounted, never silent.
    kLog.warn("outbound budget exhausted for member ",
              member_id().to_string(), "; shed event ",
              event.event().type());
  }
}

void ForwardingProxy::on_datagram(BytesView data) {
  std::optional<Packet> p = Packet::decode(data);
  if (!p) return;  // corrupt or foreign frame
  channel_->on_packet(*p);
}

void ForwardingProxy::on_purge() { channel_->reset(); }

void ForwardingProxy::send_quench_update(const std::vector<Filter>& filters) {
  // Control class: a quench table is load-bearing protocol state — a full
  // data queue must never starve or shed it (a dropped table would
  // permanently desync the member's publish suppression).
  (void)channel_->send(BusMessage::quench_update(filters).encode(),
                       MsgClass::kControl);
}

void ForwardingProxy::send_flow_control(bool under_pressure) {
  (void)channel_->send(BusMessage::flow_control(under_pressure).encode(),
                       MsgClass::kControl);
}

void ForwardingProxy::send_interest_update(const InterestUpdate& update) {
  // Control class like the quench table: an interest table is routing
  // state — shedding one would silently partition the federation.
  (void)channel_->send(BusMessage::interest_update(update).encode(),
                       MsgClass::kControl);
}

void ForwardingProxy::send_repl_update(const ReplUpdate& update) {
  // Control class like the interest table: replicated core state is what
  // failover recovers from — shedding it would silently widen the
  // staleness window past the declared budget (DESIGN.md §13).
  (void)channel_->send(BusMessage::repl_update(update).encode(),
                       MsgClass::kControl);
}

void ForwardingProxy::on_shed(BytesView message) {
  // Only data-class messages are ever shed, and the only data-class
  // traffic on a proxy channel is kEvent deliveries.
  BusMessage m;
  try {
    m = BusMessage::decode(message);
  } catch (const DecodeError& e) {
    kLog.error("shed an undecodable message for ", member_id().to_string(),
               ": ", e.what());
    return;
  }
  if (m.type != BusMsgType::kEvent || !m.event) {
    kLog.error("shed a non-event ", to_string(m.type), " for ",
               member_id().to_string());
    return;
  }
  bus().notify_shed(member_id(), *m.event);
}

std::size_t ForwardingProxy::pending() const {
  return channel_->queued() + channel_->in_flight();
}

void ForwardingProxy::on_message(BytesView message) {
  BusMessage m;
  try {
    m = BusMessage::decode(message);
  } catch (const DecodeError& e) {
    kLog.warn("malformed bus message from ", member_id().to_string(), ": ",
              e.what());
    return;
  }
  switch (m.type) {
    case BusMsgType::kPublish:
      bus().member_publish(member_id(), freeze(std::move(*m.event)));
      break;
    case BusMsgType::kSubscribe:
      bus().member_subscribe(member_id(), m.sub_id, std::move(*m.filter));
      break;
    case BusMsgType::kUnsubscribe:
      bus().member_unsubscribe(member_id(), m.sub_id);
      break;
    case BusMsgType::kInterestUpdate:
      // The only member → bus interest message is a resync request.
      if (m.interest && m.interest->request_resync) {
        bus().member_interest_resync(member_id());
      } else {
        kLog.warn("unexpected interest push from member ",
                  member_id().to_string());
      }
      break;
    case BusMsgType::kReplUpdate:
      // The only standby → bus repl message is a resync request.
      if (m.repl && m.repl->request_resync) {
        bus().member_repl_resync(member_id());
      } else {
        kLog.warn("unexpected repl push from member ",
                  member_id().to_string());
      }
      break;
    case BusMsgType::kEvent:
    case BusMsgType::kQuenchUpdate:
    case BusMsgType::kFlowControl:
    case BusMsgType::kReplSnapshot:
      // Bus-to-member messages are nonsense coming from a member.
      kLog.warn("unexpected ", to_string(m.type), " from member ",
                member_id().to_string());
      break;
  }
}

}  // namespace amuse
