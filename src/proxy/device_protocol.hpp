// The raw device protocol spoken between simple sensors/actuators and their
// translating proxies.
//
// "the temperature sensor … may periodically send a series of bytes
//  representing a temperature reading, which the proxy converts into an
//  object representing an event" (§III-B). Devices are too simple for the
// bus wire protocol; they exchange tiny frames:
//
//   magic u8 = 0xD5 | type u8 | seq u16 | payload…
//
//   kReading  device → proxy   device-specific payload bytes
//   kCommand  proxy → device   device-specific payload bytes
//   kAck      either direction acknowledges `seq` (empty payload)
//
// Reliability is stop-and-wait per direction; whether a *reading* needs an
// acknowledgement is the device's choice ("a temperature sensor may
// periodically transmit data and not require any acknowledgement").
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace amuse {

enum class DeviceFrameType : std::uint8_t {
  kReading = 1,
  kCommand = 2,
  kAck = 3,
};

struct DeviceFrame {
  DeviceFrameType type = DeviceFrameType::kReading;
  std::uint16_t seq = 0;
  Bytes payload;

  static constexpr std::uint8_t kMagic = 0xD5;

  [[nodiscard]] Bytes encode() const {
    Writer w(4 + payload.size());
    w.u8(kMagic);
    w.u8(static_cast<std::uint8_t>(type));
    w.u16(seq);
    w.raw(payload);
    return std::move(w).take();
  }

  [[nodiscard]] static std::optional<DeviceFrame> decode(BytesView data) {
    if (data.size() < 4 || data[0] != kMagic) return std::nullopt;
    std::uint8_t t = data[1];
    if (t < 1 || t > 3) return std::nullopt;
    DeviceFrame f;
    f.type = static_cast<DeviceFrameType>(t);
    f.seq = static_cast<std::uint16_t>((data[2] << 8) | data[3]);
    f.payload.assign(data.begin() + 4, data.end());
    return f;
  }
};

/// Wraparound-aware "newer than" for 16-bit device sequence numbers.
[[nodiscard]] inline bool seq16_newer(std::uint16_t candidate,
                                      std::uint16_t reference) {
  return static_cast<std::int16_t>(candidate - reference) > 0;
}

}  // namespace amuse
