// ForwardingProxy: "simple proxies for complex sensors (resembling a mere
// forwarding mechanism between the services)" (§III-B).
//
// The member speaks the bus wire protocol itself (a BusClient); the proxy's
// job is the generic part only — the reliable, ordered, exactly-once
// channel with its persistent outbound queue, and dispatch of the member's
// bus messages (publish/subscribe/unsubscribe) into the core.
#pragma once

#include <memory>

#include "bus/messages.hpp"
#include "proxy/proxy.hpp"
#include "wire/reliable_channel.hpp"

namespace amuse {

class ForwardingProxy final : public Proxy {
 public:
  ForwardingProxy(BusPort& bus, MemberInfo info);

  AMUSE_AFFINITY(core_executor)
  void deliver_event(const EncodedEvent& event,
                     const std::vector<std::uint64_t>& matched) override;
  AMUSE_AFFINITY(core_executor) void on_datagram(BytesView data) override;
  AMUSE_AFFINITY(core_executor) void on_purge() override;
  AMUSE_AFFINITY(core_executor)
  void send_quench_update(const std::vector<Filter>& filters) override;
  AMUSE_AFFINITY(core_executor)
  void send_flow_control(bool under_pressure) override;
  AMUSE_AFFINITY(core_executor)
  void send_interest_update(const InterestUpdate& update) override;
  AMUSE_AFFINITY(core_executor)
  void send_repl_update(const ReplUpdate& update) override;
  [[nodiscard]] std::size_t pending() const override;
  [[nodiscard]] std::size_t retained_bytes() const override {
    return channel_->retained_bytes();
  }
  AMUSE_AFFINITY(core_executor) bool shed_oldest_data() override {
    return channel_->shed_oldest_data();
  }
  [[nodiscard]] bool delivery_stalled() const override {
    return channel_->failed();
  }

  [[nodiscard]] const ReliableChannelStats& channel_stats() const {
    return channel_->stats();
  }
  /// True when retransmissions to the member are exhausted and the channel
  /// is waiting for the member (or the discovery service's verdict).
  [[nodiscard]] bool stalled() const { return channel_->failed(); }
  /// Restart delivery attempts (the member was heard from again).
  void resume() { channel_->poke(); }

 private:
  AMUSE_AFFINITY(core_executor) void on_message(BytesView message);
  AMUSE_AFFINITY(core_executor) void on_shed(BytesView message);

  std::unique_ptr<ReliableChannel> channel_;
};

}  // namespace amuse
