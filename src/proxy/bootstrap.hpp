// Proxy bootstrap mechanism (§III-C): reacts to "New Member" events by
// creating "the appropriate proxy type for the new service", selected by
// the device type the discovery service reported.
//
// Creators are registered against device-type prefixes (longest prefix
// wins), so "sensor." can install a translating proxy family while
// "sensor.ecg" overrides with something specific. Members with no
// registered creator get a ForwardingProxy — they are assumed to speak the
// bus wire protocol themselves.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "proxy/proxy.hpp"

namespace amuse {

class ProxyFactory {
 public:
  using Creator =
      std::function<std::unique_ptr<Proxy>(BusPort&, const MemberInfo&)>;

  ProxyFactory();

  /// Registers `creator` for member device types starting with `prefix`.
  void register_type(std::string prefix, Creator creator);

  /// Replaces the fallback creator (initially ForwardingProxy).
  void set_default(Creator creator);

  /// Instantiates the proxy for a newly admitted member.
  [[nodiscard]] AMUSE_AFFINITY(core_executor) std::unique_ptr<Proxy> create(
      BusPort& bus, const MemberInfo& info) const;

  [[nodiscard]] std::size_t registered_types() const {
    return creators_.size();
  }

 private:
  std::map<std::string, Creator> creators_;  // keyed by prefix
  Creator default_creator_;
};

}  // namespace amuse
