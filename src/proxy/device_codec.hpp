// DeviceCodec: the device-type-specific half of a translating proxy.
//
// "With this design, we can build complex proxies for simple sensors
//  (capable of performing translation between the device protocol and
//  higher level event types)…" (§III-B). A codec knows how to turn a
// device's raw reading bytes into a typed event, how to turn bus events
// into device command bytes, and which subscriptions the proxy should
// register "on behalf of the device upon its creation".
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"

namespace amuse {

class DeviceCodec {
 public:
  virtual ~DeviceCodec();

  DeviceCodec() = default;
  DeviceCodec(const DeviceCodec&) = delete;
  DeviceCodec& operator=(const DeviceCodec&) = delete;

  /// Raw reading payload → typed event, or nullopt for unparseable/ignored
  /// readings (the proxy still acknowledges them when configured to).
  [[nodiscard]] virtual std::optional<Event> decode_reading(
      BytesView payload) = 0;

  /// Bus event → raw command payload for the device, or nullopt when the
  /// event carries nothing this device can act on.
  [[nodiscard]] virtual std::optional<Bytes> encode_command(
      const Event& event) = 0;

  /// Filters the proxy registers on the device's behalf at creation
  /// ("the proxy itself might carry enough knowledge to register for
  /// appropriate events", §III-B).
  [[nodiscard]] virtual std::vector<Filter> initial_subscriptions() = 0;

  /// Whether readings from this device expect a device-level ack.
  [[nodiscard]] virtual bool readings_need_ack() const { return true; }
};

}  // namespace amuse
