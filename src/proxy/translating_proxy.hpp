// TranslatingProxy: a "complex proxy for a simple sensor" (§III-B).
//
// Speaks the raw device protocol with the member and fully translates in
// both directions:
//   device reading bytes → typed Event → bus (publish, with dedup + ack);
//   bus Event → command bytes → device (ordered stop-and-wait queue,
//   retransmitted until the device acknowledges — "events unacknowledged by
//   the device [are] resent by the proxy").
#pragma once

#include <deque>
#include <memory>

#include "proxy/device_codec.hpp"
#include "proxy/device_protocol.hpp"
#include "proxy/proxy.hpp"

namespace amuse {

struct TranslatingProxyConfig {
  Duration resend_interval = milliseconds(250);
  double resend_backoff = 2.0;
  Duration resend_max = seconds(4);
  int max_retries = 10;
  std::size_t max_queue = 1024;
};

class TranslatingProxy final : public Proxy {
 public:
  TranslatingProxy(BusPort& bus, MemberInfo info,
                   std::unique_ptr<DeviceCodec> codec,
                   TranslatingProxyConfig config = {});
  ~TranslatingProxy() override;

  AMUSE_AFFINITY(core_executor)
  void deliver_event(const EncodedEvent& event,
                     const std::vector<std::uint64_t>& matched) override;
  AMUSE_AFFINITY(core_executor) void on_datagram(BytesView data) override;
  AMUSE_AFFINITY(core_executor) void on_purge() override;
  [[nodiscard]] std::size_t pending() const override { return queue_.size(); }

  struct Stats {
    std::uint64_t readings_decoded = 0;
    std::uint64_t readings_undecodable = 0;
    std::uint64_t readings_duplicate = 0;
    std::uint64_t commands_sent = 0;
    std::uint64_t commands_acked = 0;
    std::uint64_t command_retransmits = 0;
    std::uint64_t events_untranslatable = 0;
    std::uint64_t queue_overflow = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool stalled() const { return stalled_; }

 private:
  // start transmitting the queue head
  AMUSE_AFFINITY(core_executor) void pump();
  AMUSE_AFFINITY(core_executor) void transmit_head();
  AMUSE_AFFINITY(core_executor) void arm_timer();
  AMUSE_AFFINITY(core_executor) void on_timeout();

  std::unique_ptr<DeviceCodec> codec_;
  TranslatingProxyConfig config_;

  // Device → bus.
  bool seen_any_reading_ = false;
  std::uint16_t last_reading_seq_ = 0;

  // Bus → device (stop-and-wait).
  std::deque<Bytes> queue_;  // encoded command payloads, head is in flight
  bool head_in_flight_ = false;
  std::uint16_t next_cmd_seq_ = 1;
  std::uint16_t head_seq_ = 0;
  Duration rto_;
  int retries_ = 0;
  TimerId timer_ = kNoTimer;
  bool stalled_ = false;

  Stats stats_;
};

}  // namespace amuse
