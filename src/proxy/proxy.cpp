#include "proxy/proxy.hpp"

#include "proxy/device_codec.hpp"

namespace amuse {

BusPort::~BusPort() = default;
Proxy::~Proxy() = default;
DeviceCodec::~DeviceCodec() = default;

void Proxy::send_quench_update(const std::vector<Filter>& filters) {
  (void)filters;
}

void Proxy::send_flow_control(bool under_pressure) { (void)under_pressure; }

void Proxy::send_interest_update(const InterestUpdate& update) {
  (void)update;
}

void Proxy::send_repl_update(const ReplUpdate& update) { (void)update; }

}  // namespace amuse
