// Proxy: the per-member object the event bus communicates through.
//
// "Each service granted membership of the SMC is represented by a proxy
//  object, which provides a standard interface to that service. … A proxy
//  is modelled as an abstract class containing generic code applicable to
//  all SMC services, completed by a concrete class containing
//  implementation details specific to the device/service type." (§III-B)
//
// Generic responsibilities implemented here: identity, lifetime (a proxy
// destroys itself and any queued outbound data on "Purge Member"), and the
// delivery-statistics surface. Queueing/acknowledgement strategy is the
// concrete class's business: ForwardingProxy runs a ReliableChannel for
// members that speak the wire protocol; TranslatingProxy implements a
// stop-and-wait device protocol and data translation for dumb sensors.
#pragma once

#include <cstddef>

#include "bus/bus_port.hpp"
#include "bus/messages.hpp"
#include "common/annotations.hpp"
#include "pubsub/encoded_event.hpp"

namespace amuse {

class Proxy {
 public:
  Proxy(BusPort& bus, MemberInfo info) : bus_(bus), info_(std::move(info)) {}
  virtual ~Proxy();

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Bus → member: queue a matched event for ordered, acknowledged
  /// delivery. `matched` holds the member's local subscription ids. The
  /// event arrives as the fan-out's shared encode-once value: proxies that
  /// forward the wire protocol reuse its cached body bytes, proxies that
  /// translate read the shared immutable event; none copy it.
  AMUSE_AFFINITY(core_executor)
  virtual void deliver_event(const EncodedEvent& event,
                             const std::vector<std::uint64_t>& matched) = 0;

  /// Raw datagram arriving on the bus endpoint from this member.
  AMUSE_AFFINITY(core_executor) virtual void on_datagram(BytesView data) = 0;

  /// "Purge Member": drop any outbound data awaiting delivery and stop all
  /// timers. The bus destroys the proxy right after calling this.
  AMUSE_AFFINITY(core_executor) virtual void on_purge() = 0;

  /// Quench table changed (default: device cannot use it; ignore).
  AMUSE_AFFINITY(core_executor)
  virtual void send_quench_update(const std::vector<Filter>& filters);

  /// Bus-wide flow control (DESIGN.md §9): tell the member to pause
  /// (true) or resume (false) publishing. Default: device cannot use it.
  AMUSE_AFFINITY(core_executor) virtual void send_flow_control(bool under_pressure);

  /// Interest table changed for this routing peer (gateway members only).
  /// Default: device is not a routing peer; ignore.
  AMUSE_AFFINITY(core_executor)
  virtual void send_interest_update(const InterestUpdate& update);

  /// Replication stream for warm standbys (standby members only; always
  /// control class, DESIGN.md §13). Default: device is not a standby;
  /// ignore.
  AMUSE_AFFINITY(core_executor)
  virtual void send_repl_update(const ReplUpdate& update);

  /// Payload bytes this proxy retains for the member (queued + in flight).
  /// Default 0: proxies without a budgeted queue are never shed victims.
  [[nodiscard]] virtual std::size_t retained_bytes() const { return 0; }
  /// Sheds the proxy's oldest queued data-class message; returns false
  /// when nothing is eligible. Called by the bus-wide budget enforcement.
  AMUSE_AFFINITY(core_executor) virtual bool shed_oldest_data() {
    return false;
  }
  /// True when deliveries to the member have stalled (retries exhausted) —
  /// the shed policy prefers victims that are not making progress anyway.
  [[nodiscard]] virtual bool delivery_stalled() const { return false; }

  /// Outbound events queued but not yet acknowledged by the member.
  [[nodiscard]] virtual std::size_t pending() const = 0;

  [[nodiscard]] const MemberInfo& info() const { return info_; }
  [[nodiscard]] ServiceId member_id() const { return info_.id; }

 protected:
  [[nodiscard]] BusPort& bus() { return bus_; }

 private:
  BusPort& bus_;
  MemberInfo info_;
};

}  // namespace amuse
