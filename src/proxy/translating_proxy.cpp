#include "proxy/translating_proxy.hpp"

#include "common/log.hpp"

namespace amuse {
namespace {
const Logger kLog("proxy.translating");
}

TranslatingProxy::TranslatingProxy(BusPort& bus, MemberInfo info,
                                   std::unique_ptr<DeviceCodec> codec,
                                   TranslatingProxyConfig config)
    : Proxy(bus, std::move(info)),
      codec_(std::move(codec)),
      config_(config),
      rto_(config.resend_interval) {
  // Register subscriptions on the device's behalf (§III-B).
  std::uint64_t local_id = 1;
  for (const Filter& f : codec_->initial_subscriptions()) {
    this->bus().member_subscribe(member_id(), local_id++, f);
  }
}

TranslatingProxy::~TranslatingProxy() { bus().executor().cancel(timer_); }

void TranslatingProxy::deliver_event(const EncodedEvent& event,
                                     const std::vector<std::uint64_t>& matched) {
  (void)matched;  // a raw device has no notion of subscription ids
  std::optional<Bytes> command = codec_->encode_command(event.event());
  if (!command) {
    ++stats_.events_untranslatable;
    return;
  }
  if (queue_.size() >= config_.max_queue) {
    ++stats_.queue_overflow;
    kLog.warn("command queue full for ", member_id().to_string());
    return;
  }
  queue_.push_back(std::move(*command));
  pump();
}

void TranslatingProxy::on_datagram(BytesView data) {
  std::optional<DeviceFrame> frame = DeviceFrame::decode(data);
  if (!frame) return;

  switch (frame->type) {
    case DeviceFrameType::kReading: {
      if (codec_->readings_need_ack()) {
        DeviceFrame ack;
        ack.type = DeviceFrameType::kAck;
        ack.seq = frame->seq;
        bus().send_datagram(member_id(), ack.encode());
      }
      if (seen_any_reading_ && !seq16_newer(frame->seq, last_reading_seq_)) {
        ++stats_.readings_duplicate;
        return;
      }
      seen_any_reading_ = true;
      last_reading_seq_ = frame->seq;
      std::optional<Event> event = codec_->decode_reading(frame->payload);
      if (!event) {
        ++stats_.readings_undecodable;
        return;
      }
      ++stats_.readings_decoded;
      bus().member_publish(member_id(), freeze(std::move(*event)));
      break;
    }
    case DeviceFrameType::kAck: {
      // Any sign of life un-stalls the command pipeline.
      if (stalled_) {
        stalled_ = false;
        retries_ = 0;
        rto_ = config_.resend_interval;
        if (head_in_flight_) transmit_head();
        arm_timer();
      }
      if (head_in_flight_ && frame->seq == head_seq_) {
        ++stats_.commands_acked;
        queue_.pop_front();
        head_in_flight_ = false;
        retries_ = 0;
        rto_ = config_.resend_interval;
        bus().executor().cancel(timer_);
        timer_ = kNoTimer;
        pump();
      }
      break;
    }
    case DeviceFrameType::kCommand:
      // Devices do not command their proxy.
      break;
  }
}

void TranslatingProxy::pump() {
  if (head_in_flight_ || queue_.empty() || stalled_) return;
  head_seq_ = next_cmd_seq_++;
  head_in_flight_ = true;
  transmit_head();
  arm_timer();
}

void TranslatingProxy::transmit_head() {
  DeviceFrame f;
  f.type = DeviceFrameType::kCommand;
  f.seq = head_seq_;
  f.payload = queue_.front();
  ++stats_.commands_sent;
  bus().send_datagram(member_id(), f.encode());
}

void TranslatingProxy::arm_timer() {
  if (timer_ != kNoTimer || !head_in_flight_ || stalled_) return;
  timer_ = bus().executor().schedule_after(rto_, [this] {
    timer_ = kNoTimer;
    on_timeout();
  });
}

void TranslatingProxy::on_timeout() {
  if (!head_in_flight_ || stalled_) return;
  if (retries_ >= config_.max_retries) {
    stalled_ = true;
    kLog.debug("device ", member_id().to_string(),
               " unresponsive; holding command queue");
    return;
  }
  ++retries_;
  ++stats_.command_retransmits;
  rto_ = std::min(Duration(static_cast<std::int64_t>(
                      static_cast<double>(rto_.count()) *
                      config_.resend_backoff)),
                  config_.resend_max);
  transmit_head();
  arm_timer();
}

void TranslatingProxy::on_purge() {
  bus().executor().cancel(timer_);
  timer_ = kNoTimer;
  queue_.clear();
  head_in_flight_ = false;
  stalled_ = false;
  retries_ = 0;
  rto_ = config_.resend_interval;
}

}  // namespace amuse
