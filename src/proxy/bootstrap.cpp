#include "proxy/bootstrap.hpp"

#include "proxy/forwarding_proxy.hpp"

namespace amuse {

ProxyFactory::ProxyFactory() {
  default_creator_ = [](BusPort& bus, const MemberInfo& info) {
    return std::make_unique<ForwardingProxy>(bus, info);
  };
}

void ProxyFactory::register_type(std::string prefix, Creator creator) {
  creators_.insert_or_assign(std::move(prefix), std::move(creator));
}

void ProxyFactory::set_default(Creator creator) {
  default_creator_ = std::move(creator);
}

std::unique_ptr<Proxy> ProxyFactory::create(BusPort& bus,
                                            const MemberInfo& info) const {
  // Longest matching prefix wins.
  const Creator* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, creator] : creators_) {
    if (info.device_type.starts_with(prefix) && prefix.size() >= best_len) {
      best = &creator;
      best_len = prefix.size();
    }
  }
  return best ? (*best)(bus, info) : default_creator_(bus, info);
}

}  // namespace amuse
