// Real-wire UDP datapath benchmark (DESIGN.md §12): events/sec over
// loopback sockets, A/B between the legacy one-syscall-per-datagram path
// and the batched recvmmsg/sendmmsg path, swept over payload size × shard
// count × receive batch depth.
//
// Topology: two UdpTransports in one process (sender → receiver). The
// sender thread pushes timestamped datagrams through Transport::send_batch
// (or per-datagram send() in legacy mode) under a credit window: it never
// holds more than `credit` datagrams outstanding beyond what the receiver
// has delivered, so the kernel socket queue — not the bench — is the only
// place datagrams wait. UDP may still drop under pressure; a stalled
// window is written off after a grace period so the bench always
// terminates, and delivered (not sent) datagrams are what's rated.
//
// Latency: every 16th datagram carries a steady-clock timestamp in its
// first 8 bytes; the receive handler turns those into p50/p99 samples.
//
// `--smoke` runs one small A/B cell and exits non-zero unless the batched
// path at least matches legacy events/sec and the batch counters prove
// batching actually happened (ctest `bench.udp_smoke`). Environments that
// cannot open sockets exit 77 (ctest SKIP_RETURN_CODE).
// `--json PATH` writes the sweep + A/B verdict for the bench artifact.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.hpp"
#include "net/udp_transport.hpp"
#include "sim/executor_pool.hpp"

namespace amuse::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct CellParams {
  std::size_t payload = 250;   // datagram payload bytes (>= 16)
  std::size_t shards = 1;      // receiver ExecutorPool size
  std::size_t depth = 16;      // recv_batch and send burst size
  bool batched = true;         // false = legacy recvfrom/sendto A/B column
  std::size_t events = 60'000;
  std::size_t credit = 1024;   // max datagrams outstanding past delivery
};

struct CellResult {
  double events_per_sec = 0;
  double send_dgrams_per_syscall = 0;
  double recv_dgrams_per_syscall = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  UdpTransportStats rx;  // receiver-side counters
  UdpTransportStats tx;  // sender-side counters
};

void stamp_now(std::uint8_t* dst) {
  auto ns = static_cast<std::uint64_t>(
      Clock::now().time_since_epoch().count());
  std::memcpy(dst, &ns, sizeof(ns));
}

double stamped_age_us(const std::uint8_t* src) {
  std::uint64_t ns = 0;
  std::memcpy(&ns, src, sizeof(ns));
  auto now = static_cast<std::uint64_t>(
      Clock::now().time_since_epoch().count());
  return now <= ns ? 0.0 : static_cast<double>(now - ns) / 1000.0;
}

CellResult run_cell(const CellParams& p) {
  CellResult r;

  UdpOptions rx_opts;
  rx_opts.batch_io = p.batched;
  rx_opts.recv_batch = p.batched ? p.depth : 1;
  UdpOptions tx_opts = rx_opts;

  ExecutorPool rx_pool({p.shards, /*pin_threads=*/true});
  ExecutorPool tx_pool({1, /*pin_threads=*/true});
  auto receiver = UdpTransport::open(rx_pool, rx_opts);
  auto sender = UdpTransport::open(tx_pool, tx_opts);

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> last_delivery_ns{0};
  // Every 16th datagram is stamped; samples land via an atomic cursor so
  // concurrent shards never contend on a lock in the hot path.
  std::vector<double> latencies(p.events / 16 + 1, 0.0);
  std::atomic<std::size_t> lat_cursor{0};

  receiver->set_receive_handler([&](ServiceId, BytesView data) {
    if (data.size() >= 16 && data[8] == 1) {
      std::size_t slot = lat_cursor.fetch_add(1, std::memory_order_relaxed);
      if (slot < latencies.size()) {
        latencies[slot] = stamped_age_us(data.data());
      }
    }
    delivered.fetch_add(1, std::memory_order_relaxed);
    last_delivery_ns.store(static_cast<std::uint64_t>(
                               Clock::now().time_since_epoch().count()),
                           std::memory_order_relaxed);
  });

  const ServiceId dst = receiver->local_id();
  const auto start = Clock::now();

  // Sender: bursts of `depth` datagrams under the credit window. UDP can
  // drop on loopback under pressure; when delivery stalls for 50 ms the
  // outstanding balance is written off so the window reopens.
  std::uint64_t sent = 0;
  std::uint64_t written_off = 0;
  auto last_progress = Clock::now();
  std::uint64_t progress_mark = 0;
  Bytes scratch(p.payload * p.depth, 0x5A);
  while (sent < p.events) {
    std::uint64_t got = delivered.load(std::memory_order_relaxed);
    if (got != progress_mark) {
      progress_mark = got;
      last_progress = Clock::now();
    }
    std::uint64_t outstanding = sent - got - written_off;
    if (outstanding >= p.credit) {
      if (Clock::now() - last_progress > std::chrono::milliseconds(50)) {
        written_off += outstanding;  // assume dropped; reopen the window
        last_progress = Clock::now();
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    std::size_t burst = std::min({p.depth, p.events - static_cast<std::size_t>(sent),
                                  static_cast<std::size_t>(p.credit - outstanding)});
    std::vector<Transport::Datagram> dgrams;
    dgrams.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      std::uint8_t* buf = scratch.data() + i * p.payload;
      bool stamped = (sent + i) % 16 == 0;
      buf[8] = stamped ? 1 : 0;
      if (stamped) stamp_now(buf);
      dgrams.push_back(Transport::Datagram{dst, BytesView(buf, p.payload)});
    }
    if (p.batched) {
      sender->send_batch(dgrams);
    } else {
      for (const auto& d : dgrams) sender->send(d.dst, d.data);
    }
    sent += burst;
  }

  // Quiesce: the run ends when delivery stops moving (drops keep
  // `delivered` below `sent` forever, so equality is not awaited).
  for (;;) {
    std::uint64_t before = delivered.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (delivered.load(std::memory_order_relaxed) == before) break;
  }

  r.sent = sent;
  r.delivered = delivered.load(std::memory_order_relaxed);
  std::uint64_t end_ns = last_delivery_ns.load(std::memory_order_relaxed);
  auto start_ns = static_cast<std::uint64_t>(
      start.time_since_epoch().count());
  double elapsed_s = end_ns > start_ns
                         ? static_cast<double>(end_ns - start_ns) / 1e9
                         : 1e-9;
  r.events_per_sec = static_cast<double>(r.delivered) / elapsed_s;

  r.rx = receiver->stats();
  r.tx = sender->stats();
  if (r.tx.send_syscalls > 0) {
    r.send_dgrams_per_syscall = static_cast<double>(r.tx.datagrams_sent) /
                                static_cast<double>(r.tx.send_syscalls);
  }
  if (r.rx.recv_syscalls > 0) {
    r.recv_dgrams_per_syscall =
        static_cast<double>(r.rx.datagrams_received) /
        static_cast<double>(r.rx.recv_syscalls);
  }

  // Transports die before their pools: the receive threads stop, then the
  // shard consumers drain and join.
  receiver.reset();
  sender.reset();
  rx_pool.stop();
  tx_pool.stop();

  // Only now is `latencies` safe to read: joining the shard threads above
  // is the happens-before edge for the handler's non-atomic sample writes.
  std::vector<double> samples(
      latencies.begin(),
      latencies.begin() +
          static_cast<std::ptrdiff_t>(std::min(
              lat_cursor.load(std::memory_order_relaxed), latencies.size())));
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    r.p50_us = samples[samples.size() / 2];
    r.p99_us = samples[static_cast<std::size_t>(
        static_cast<double>(samples.size() - 1) * 0.99)];
  }
  return r;
}

void print_cell(const CellParams& p, const CellResult& r) {
  std::printf(
      "  %7zu B  x%zu shard  depth %2zu  %-7s  %10.0f ev/s  "
      "dg/syscall tx %5.1f rx %5.1f  p50 %6.1f us  p99 %7.1f us  "
      "(%llu/%llu delivered)\n",
      p.payload, p.shards, p.depth, p.batched ? "batched" : "legacy",
      r.events_per_sec, r.send_dgrams_per_syscall, r.recv_dgrams_per_syscall,
      r.p50_us, r.p99_us, static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.sent));
}

/// Probe: can this environment open UDP sockets at all? Sandboxes without
/// network namespaces cannot, and the bench must skip, not fail.
bool sockets_available() {
  try {
    ExecutorPool pool({1, false});
    auto t = UdpTransport::open(pool, UdpOptions{});
    t.reset();
    pool.stop();
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "udp_datapath: no socket support (%s); skipping\n",
                 e.what());
    return false;
  }
}

int run_smoke() {
  std::printf("udp_datapath smoke: batched vs legacy loopback A/B\n");
  CellParams legacy;
  legacy.events = 6000;
  legacy.batched = false;
  CellParams batched = legacy;
  batched.batched = true;

  CellResult lr = run_cell(legacy);
  print_cell(legacy, lr);
  CellResult br = run_cell(batched);
  print_cell(batched, br);

  int violations = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "udp_datapath smoke: FAIL %s\n", what);
      ++violations;
    }
  };
  check(br.events_per_sec >= lr.events_per_sec,
        "batched events/sec >= legacy");
  check(br.rx.recv_batches > 0, "receiver posted multi-datagram batches");
  check(br.rx.max_recv_batch >= 2, "recvmmsg harvested >= 2 datagrams");
  check(br.tx.batches_sent > 0, "sender flushed sendmmsg batches");
  check(br.rx.buffers_recycled > 0, "receive slots recycled via freelist");
  check(br.delivered > legacy.events / 2, "batched path delivered majority");
  check(lr.delivered > legacy.events / 2, "legacy path delivered majority");
  if (violations != 0) {
    std::fprintf(stderr, "udp_datapath smoke: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("udp_datapath smoke: batched >= legacy, counters consistent\n");
  return 0;
}

int run_full(const char* json_path) {
  std::printf("UDP loopback datapath: events/sec, batched vs legacy\n");
  print_header("payload x shards x depth sweep; legacy = one syscall per "
               "datagram (A/B baseline)",
               "  payload    shards   depth  mode");

  // The A/B acceptance cell: 250 B payloads, batched at depth 32 (the sweep
  // knee — deeper harvests amortise the syscall + wakeup further but stop
  // paying once the socket queue rarely holds that many) against the legacy
  // one-syscall-per-datagram path.
  CellParams ab_legacy;
  ab_legacy.payload = 250;
  ab_legacy.batched = false;
  CellParams ab_batched = ab_legacy;
  ab_batched.batched = true;
  ab_batched.depth = 32;
  CellResult ab_l = run_cell(ab_legacy);
  print_cell(ab_legacy, ab_l);
  CellResult ab_b = run_cell(ab_batched);
  print_cell(ab_batched, ab_b);
  double speedup = ab_l.events_per_sec > 0
                       ? ab_b.events_per_sec / ab_l.events_per_sec
                       : 0;

  // Sweep the batched path.
  std::vector<std::pair<CellParams, CellResult>> sweep;
  for (std::size_t payload : {std::size_t{64}, std::size_t{1024}}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
      for (std::size_t depth : {std::size_t{8}, std::size_t{32}}) {
        CellParams p;
        p.payload = payload;
        p.shards = shards;
        p.depth = depth;
        CellResult r = run_cell(p);
        print_cell(p, r);
        sweep.emplace_back(p, r);
      }
    }
  }

  std::printf("\nA/B at 250 B: %.0f -> %.0f ev/s (%.2fx), recv dg/syscall "
              "%.1f, send dg/syscall %.1f\n",
              ab_l.events_per_sec, ab_b.events_per_sec, speedup,
              ab_b.recv_dgrams_per_syscall, ab_b.send_dgrams_per_syscall);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"udp_datapath\",\n"
                 "  \"ab_250B\": {\n"
                 "    \"legacy_events_per_sec\": %.0f,\n"
                 "    \"batched_events_per_sec\": %.0f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"batched_recv_datagrams_per_syscall\": %.2f,\n"
                 "    \"batched_send_datagrams_per_syscall\": %.2f,\n"
                 "    \"batched_p50_us\": %.1f,\n"
                 "    \"batched_p99_us\": %.1f,\n"
                 "    \"legacy_p50_us\": %.1f,\n"
                 "    \"legacy_p99_us\": %.1f,\n"
                 "    \"buffers_recycled\": %llu,\n"
                 "    \"buffers_fresh\": %llu\n  },\n"
                 "  \"sweep\": [\n",
                 ab_l.events_per_sec, ab_b.events_per_sec, speedup,
                 ab_b.recv_dgrams_per_syscall, ab_b.send_dgrams_per_syscall,
                 ab_b.p50_us, ab_b.p99_us, ab_l.p50_us, ab_l.p99_us,
                 static_cast<unsigned long long>(ab_b.rx.buffers_recycled),
                 static_cast<unsigned long long>(ab_b.rx.buffers_fresh));
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& [p, r] = sweep[i];
      std::fprintf(
          f,
          "    {\"payload\": %zu, \"shards\": %zu, \"depth\": %zu, "
          "\"events_per_sec\": %.0f, \"recv_dg_per_syscall\": %.2f, "
          "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
          p.payload, p.shards, p.depth, r.events_per_sec,
          r.recv_dgrams_per_syscall, r.p50_us, r.p99_us,
          i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace amuse::bench

int main(int argc, char** argv) {
  if (!amuse::bench::sockets_available()) return 77;
  const char* json_path = nullptr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  return smoke ? amuse::bench::run_smoke() : amuse::bench::run_full(json_path);
}
