// Ablation A5 (§VI): "scenarios to test various aspects of the system (such
// as maximum timeouts for the discovery service to allow silence from a
// device until a 'Purge Member' event is launched)".
//
// A member disconnects for D seconds and returns. For each (outage D, purge
// timeout P) pair we report whether the outage was masked (suspect →
// recovered, no purge) or the member was purged and had to re-join — and
// how long full event flow took to resume. Small P purges aggressively
// (losing queued events, forcing re-admission); large P masks long outages
// but keeps dead members' queues around.
#include "bench_util.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"

namespace amuse::bench {
namespace {

struct TimeoutResult {
  bool purged = false;
  bool rejoined = false;
  double resume_after_s = -1;  // from reconnect to first delivered event
  std::size_t delivered_during_outage_queue = 0;
};

TimeoutResult run(double outage_s, double purge_after_s, std::uint64_t seed) {
  SimExecutor ex;
  SimNetwork net(ex, seed);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& core = net.add_host("core", profiles::ideal_host());
  SimHost& roam = net.add_host("roamer", profiles::ideal_host());

  SmcCellConfig cfg;
  cfg.name = "cell";
  cfg.pre_shared_key = to_bytes("k");
  cfg.discovery.beacon_interval = milliseconds(400);
  cfg.discovery.heartbeat_interval = milliseconds(400);
  cfg.discovery.suspect_after = seconds(2);
  cfg.discovery.purge_after = from_seconds(purge_after_s);
  cfg.discovery.sweep_interval = milliseconds(200);
  SelfManagedCell cell(ex, net.create_endpoint(core),
                       net.create_endpoint(core), cfg);
  cell.start();

  TimeoutResult r;
  cell.bus().subscribe_local(
      Filter::for_type(smc_events::kPurgeMember),
      [&](const Event&) { r.purged = true; });

  SmcMemberConfig mc;
  mc.agent.cell_name = "cell";
  mc.agent.pre_shared_key = to_bytes("k");
  mc.agent.cell_lost_after = seconds(3);
  SmcMember member(ex, net.create_endpoint(roam), mc);
  TimePoint reconnect_at{};
  TimePoint first_delivery_after{};
  member.subscribe(Filter::for_type("tick"), [&](const Event&) {
    if (reconnect_at != TimePoint{} && first_delivery_after == TimePoint{} &&
        ex.now() > reconnect_at) {
      first_delivery_after = ex.now();
    }
  });
  member.start();
  ex.run_for(seconds(3));

  // A 1 Hz tick stream from the cell core for the member to receive.
  std::function<void()> tick = [&] {
    cell.bus().publish_local(Event("tick"));
    ex.schedule_after(seconds(1), tick);
  };
  tick();
  ex.run_for(seconds(2));

  // Outage.
  roam.set_up(false);
  ex.run_for(from_seconds(outage_s));
  roam.set_up(true);
  reconnect_at = ex.now();
  ex.run_for(seconds(40));

  r.rejoined = member.joined();
  if (first_delivery_after != TimePoint{}) {
    r.resume_after_s = to_seconds(first_delivery_after - reconnect_at);
  }
  return r;
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::printf("Ablation A5: discovery purge-timeout sensitivity\n");
  std::printf("(suspect_after fixed at 2 s; member outage D vs purge "
              "timeout P)\n");
  print_header("masked = outage survived without purge",
               "outage_s  purge_s  outcome   member_ok  resume_after_s");
  for (double purge : {4.0, 10.0, 20.0}) {
    for (double outage : {1.0, 3.0, 8.0, 15.0}) {
      TimeoutResult r = run(outage, purge,
                            static_cast<std::uint64_t>(purge * 100 + outage));
      std::printf("%8.0f  %7.0f  %-8s  %9s  %14.2f\n", outage, purge,
                  r.purged ? "purged" : "masked", r.rejoined ? "yes" : "NO",
                  r.resume_after_s);
    }
  }
  std::printf("\nexpected shape: outage < purge timeout -> masked with fast "
              "resume;\noutage > purge timeout -> purged, resume costs a "
              "full re-admission handshake\n");
  return 0;
}
