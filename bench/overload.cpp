// Overload robustness benchmark (DESIGN.md §9): bounded persistent delivery
// under a slow consumer.
//
// One publisher floods N subscribers through the bus while one subscriber's
// inbound link is blackholed (its own traffic still flows, so it stays a
// member). The per-member delivery budget must keep the stalled proxy's
// retained bytes bounded, every dropped event must be accounted through the
// shed tap, the publisher must see at least one kFlowControl backpressure
// signal, and the healthy subscribers must receive every event in FIFO
// order at full throughput — overload at one member never degrades the
// others ("accounted, never silent").
//
// `--smoke` runs a small matrix and exits non-zero if any invariant fails;
// CI runs it as ctest `bench.overload_smoke` (labels bench;overload).
// `--json PATH` writes the headline run's numbers for the bench artifact.
#include <cstring>
#include <map>

#include "bench_util.hpp"
#include "proxy/forwarding_proxy.hpp"

namespace amuse::bench {
namespace {

struct OverloadParams {
  int events = 1000;
  std::size_t payload = 512;          // opaque payload bytes per event
  std::size_t budget = 64 * 1024;     // per-member retained-byte budget
  std::size_t high_water = 48 * 1024;
  std::size_t low_water = 16 * 1024;
  Duration pace = milliseconds(50);   // publish spacing
  int healthy = 2;                    // healthy subscribers
};

struct OverloadResult {
  std::uint64_t published = 0;
  std::uint64_t peak_retained = 0;     // stalled channel high-water (bytes)
  std::uint64_t sheds_total = 0;       // bus-wide accounted drops
  std::uint64_t sheds_stalled = 0;     // ... attributed to the stalled member
  std::uint64_t delivered_stalled = 0; // events the stalled member still got
  std::uint64_t pressure_signals = 0;  // kFlowControl seen by the publisher
  std::uint64_t soft_fails = 0;        // publish() advisory-false returns
  std::size_t retained_after = 0;      // stalled channel bytes at quiescence
  bool healthy_fifo_complete = false;  // every healthy sub: all events, FIFO
  double healthy_eps = 0;              // healthy delivery rate (events/s)
  std::vector<std::string> violations;
};

void check(OverloadResult& r, bool ok, const std::string& what) {
  if (!ok) r.violations.push_back(what);
}

OverloadResult measure(BusEngine engine, const OverloadParams& p) {
  SimExecutor ex;
  SimNetwork net(ex, 0x0ade'0806 + static_cast<std::uint64_t>(p.events));
  net.set_default_link(profiles::usb_ip_link());
  SimHost& core = net.add_host("core", profiles::pda_ipaq_hx4700());

  EventBusConfig cfg;
  cfg.engine = engine;
  cfg.host = &core;
  cfg.channel.rto_initial = seconds(2);
  cfg.channel.max_queue_bytes = p.budget;
  cfg.channel.flow_high_water = p.high_water;
  cfg.channel.flow_low_water = p.low_water;
  EventBus bus(ex, net.create_endpoint(core), cfg);

  // Every member on its own host so exactly one core→member link stalls.
  auto make_client = [&](const std::string& name) {
    SimHost& h = net.add_host(name, profiles::laptop_p3_1200());
    auto transport = net.create_endpoint(h);
    bus.add_member(MemberInfo{transport->local_id(), name, "service"});
    BusClientConfig ccfg;
    ccfg.channel.rto_initial = seconds(2);
    return std::pair<std::unique_ptr<BusClient>, SimHost*>(
        std::make_unique<BusClient>(ex, std::move(transport), bus.bus_id(),
                                    ccfg),
        &h);
  };

  auto [pub, pub_host] = make_client("over.pub");
  auto [stalled, stalled_host] = make_client("over.stall");
  std::vector<std::unique_ptr<BusClient>> healthy;
  std::vector<std::vector<int>> healthy_seen(
      static_cast<std::size_t>(p.healthy));
  std::vector<double> healthy_at;  // sim seconds of each healthy delivery
  for (int i = 0; i < p.healthy; ++i) {
    auto [c, h] = make_client("over.ok" + std::to_string(i));
    c->subscribe(Filter::for_type("perf.payload"),
                 [&, i](const Event& e) {
                   healthy_seen[static_cast<std::size_t>(i)].push_back(
                       static_cast<int>(e.get_int("n", -1)));
                   healthy_at.push_back(to_millis(ex.now().time_since_epoch()) /
                                        1e3);
                 });
    healthy.push_back(std::move(c));
  }
  std::uint64_t delivered_stalled = 0;
  stalled->subscribe(Filter::for_type("perf.payload"),
                     [&](const Event&) { ++delivered_stalled; });

  std::uint64_t pressure_signals = 0;
  pub->set_on_pressure([&](bool on) {
    if (on) ++pressure_signals;
  });

  std::map<std::uint64_t, std::uint64_t> sheds_by_member;
  BusObserver obs;
  obs.on_shed = [&](ServiceId member, const Event&) {
    ++sheds_by_member[member.raw()];
  };
  bus.set_observer(obs);
  ex.run();  // joins + subscriptions settle

  // Blackhole core→stalled only: the member's own frames (acks, its initial
  // subscribe) still reach the bus, so it remains a member throughout.
  const ServiceId stalled_id = stalled->id();
  LinkModel dead = net.default_link();
  dead.loss = 1.0;
  net.update_link_oneway(core, *stalled_host, dead);

  // The burst: paced so the healthy subscribers can drain, but relentless —
  // the publisher keeps publishing through pressure (the advisory false
  // return is counted, not obeyed), so the stalled proxy must shed.
  OverloadResult r;
  TimePoint t0 = ex.now() + seconds(1);
  for (int i = 0; i < p.events; ++i) {
    ex.schedule_at(t0 + p.pace * i, [&, i] {
      Event e = payload_event(p.payload);
      e.set("n", i);
      if (!pub->publish(std::move(e))) ++r.soft_fails;
      ++r.published;
    });
  }
  ex.run();

  auto* proxy = static_cast<ForwardingProxy*>(bus.proxy_for(stalled_id));
  r.peak_retained = proxy->channel_stats().peak_retained_bytes;

  // Heal and drain. The stalled channel exhausted its retries during the
  // burst and paused; with no discovery service in the loop the benchmark
  // plays its role and pokes the channel once the link is back.
  net.update_link_oneway(core, *stalled_host, net.default_link());
  proxy->resume();
  ex.run();

  r.sheds_total = bus.stats().events_shed;
  r.sheds_stalled = sheds_by_member[stalled_id.raw()];
  r.delivered_stalled = delivered_stalled;
  r.pressure_signals = pressure_signals;
  r.retained_after = proxy->retained_bytes();
  if (healthy_at.size() >= 2) {
    double span = healthy_at.back() - healthy_at.front();
    if (span > 0) {
      r.healthy_eps =
          static_cast<double>(healthy_at.size() - 1) / span;
    }
  }
  r.healthy_fifo_complete = true;
  for (const auto& seen : healthy_seen) {
    bool ok = seen.size() == static_cast<std::size_t>(p.events);
    for (std::size_t i = 0; ok && i < seen.size(); ++i) {
      ok = seen[i] == static_cast<int>(i);
    }
    r.healthy_fifo_complete = r.healthy_fifo_complete && ok;
  }

  // The §9 invariants. Slack: the budget check admits the message that
  // crosses the line when nothing queued can be shed for it, and a few
  // control-class bytes (flow control) are retained outside the budget.
  const std::uint64_t slack = 1024;
  check(r, r.peak_retained <= p.budget + slack,
        "retained bytes exceeded budget + slack");
  check(r, r.healthy_fifo_complete,
        "a healthy member missed events or saw them out of order");
  check(r, r.pressure_signals >= 1, "publisher never saw backpressure");
  check(r, r.soft_fails >= 1, "publish never soft-failed under pressure");
  check(r, r.sheds_total > 0, "overload never tripped the budget");
  check(r, r.sheds_total == r.sheds_stalled,
        "sheds charged to a member other than the stalled one");
  check(r,
        r.delivered_stalled + r.sheds_stalled ==
            static_cast<std::uint64_t>(p.events),
        "stalled member accounting leak: delivered + shed != published");
  check(r, r.retained_after == 0, "retained bytes did not drain after heal");
  return r;
}

void print_row(BusEngine engine, const OverloadParams& p,
               const OverloadResult& r) {
  std::printf(
      "  %-11s events=%-4d budget=%-6zu peak=%-6llu sheds=%-4llu "
      "stalled_got=%-4llu pressure=%llu soft_fail=%-4llu eps=%6.1f %s\n",
      to_string(engine), p.events, p.budget,
      static_cast<unsigned long long>(r.peak_retained),
      static_cast<unsigned long long>(r.sheds_total),
      static_cast<unsigned long long>(r.delivered_stalled),
      static_cast<unsigned long long>(r.pressure_signals),
      static_cast<unsigned long long>(r.soft_fails), r.healthy_eps,
      r.violations.empty() ? "ok" : "VIOLATION");
  for (const std::string& v : r.violations) {
    std::fprintf(stderr, "    violation: %s\n", v.c_str());
  }
}

int run_smoke() {
  std::printf("overload smoke: bounded delivery invariants, slow consumer\n");
  OverloadParams p;
  p.events = 150;
  p.payload = 256;
  p.budget = 16 * 1024;
  p.high_water = 12 * 1024;
  p.low_water = 4 * 1024;
  int violations = 0;
  for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
    OverloadResult r = measure(engine, p);
    print_row(engine, p, r);
    violations += static_cast<int>(r.violations.size());
  }
  if (violations != 0) {
    std::fprintf(stderr, "overload smoke: %d invariant violation(s)\n",
                 violations);
    return 1;
  }
  std::printf("overload smoke: all invariants hold\n");
  return 0;
}

int run_full(const char* json_path) {
  std::printf("Overload: 1000 × 512 B burst, 64 KB per-member budget, one "
              "stalled subscriber\n");
  print_header(
      "peak = stalled channel retained-byte high-water (budget 65536 + 1 "
      "message slack); sheds are accounted drops at the stalled member; "
      "eps = healthy delivery rate",
      "  engine      parameters and observed invariants");
  OverloadParams p;  // the headline acceptance configuration
  int violations = 0;
  OverloadResult cbased;
  for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
    OverloadResult r = measure(engine, p);
    print_row(engine, p, r);
    violations += static_cast<int>(r.violations.size());
    if (engine == BusEngine::kCBased) cbased = std::move(r);
  }
  std::printf("\nexpected shape: peak stays pinned at the budget while sheds "
              "absorb the overflow;\nstalled_got + sheds == events published "
              "(nothing lost silently); healthy eps tracks\nthe publish pace "
              "untouched by the stalled peer\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"overload\",\n"
        "  \"events\": %d,\n  \"payload_bytes\": %zu,\n"
        "  \"budget_bytes\": %zu,\n"
        "  \"peak_retained_bytes\": %llu,\n"
        "  \"events_shed\": %llu,\n"
        "  \"stalled_delivered\": %llu,\n"
        "  \"pressure_signals\": %llu,\n"
        "  \"publish_soft_fails\": %llu,\n"
        "  \"healthy_fifo_complete\": %s,\n"
        "  \"healthy_events_per_sec\": %.1f,\n"
        "  \"violations\": %zu\n}\n",
        p.events, p.payload, p.budget,
        static_cast<unsigned long long>(cbased.peak_retained),
        static_cast<unsigned long long>(cbased.sheds_total),
        static_cast<unsigned long long>(cbased.delivered_stalled),
        static_cast<unsigned long long>(cbased.pressure_signals),
        static_cast<unsigned long long>(cbased.soft_fails),
        cbased.healthy_fifo_complete ? "true" : "false", cbased.healthy_eps,
        cbased.violations.size());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace amuse::bench

int main(int argc, char** argv) {
  using namespace amuse::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  return smoke ? run_smoke() : run_full(json_path);
}
