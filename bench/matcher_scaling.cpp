// Ablation A2: wall-clock matching cost of the three engines as the
// subscription count grows — the design choice behind replacing Siena's
// poset with the counting-based fast-forwarding matcher (§IV).
//
// google-benchmark; real CPU time, no simulation.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "pubsub/brute_matcher.hpp"
#include "pubsub/fastforward_matcher.hpp"
#include "pubsub/siena_matcher.hpp"

namespace amuse {
namespace {

// A realistic SMC-ish filter population: most subscriptions pin an event
// type (or type prefix) and some add a numeric threshold.
void populate(Matcher& m, std::size_t n, Rng& rng) {
  static const char* kTypes[] = {
      "vitals.heartrate", "vitals.spo2", "vitals.temperature",
      "vitals.bloodpressure", "alarm.cardiac", "alarm.fall",
      "smc.member.new", "smc.member.purge", "control.threshold",
      "actuator.defib.fire"};
  for (SubId id = 1; id <= n; ++id) {
    Filter f;
    double roll = rng.uniform();
    if (roll < 0.5) {
      f.where("type", Op::kEq, kTypes[rng.bounded(10)]);
    } else if (roll < 0.7) {
      f.where("type", Op::kPrefix, rng.chance(0.5) ? "vitals." : "alarm.");
    } else {
      f.where("type", Op::kEq, kTypes[rng.bounded(4)]);
      f.where("value", rng.chance(0.5) ? Op::kGt : Op::kLt,
              static_cast<std::int64_t>(rng.uniform_int(40, 180)));
    }
    m.add(id, f);
  }
}

Event sample_event(Rng& rng) {
  static const char* kTypes[] = {"vitals.heartrate", "vitals.spo2",
                                 "alarm.cardiac", "control.threshold",
                                 "nomatch.type"};
  Event e(kTypes[rng.bounded(5)]);
  e.set("value", static_cast<std::int64_t>(rng.uniform_int(30, 200)));
  e.set("member", std::int64_t{12345});
  return e;
}

template <typename M>
void BM_Match(benchmark::State& state) {
  M matcher;
  Rng rng(42);
  populate(matcher, static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Event> events;
  for (int i = 0; i < 64; ++i) events.push_back(sample_event(rng));
  std::vector<SubId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match(events[i++ & 63], out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["subs"] = static_cast<double>(state.range(0));
}

BENCHMARK_TEMPLATE(BM_Match, BruteForceMatcher)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK_TEMPLATE(BM_Match, SienaMatcher)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK_TEMPLATE(BM_Match, FastForwardMatcher)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

template <typename M>
void BM_Subscribe(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    M matcher;
    state.ResumeTiming();
    populate(matcher, static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(&matcher);
  }
}

BENCHMARK_TEMPLATE(BM_Subscribe, BruteForceMatcher)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(BM_Subscribe, SienaMatcher)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(BM_Subscribe, FastForwardMatcher)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace amuse

BENCHMARK_MAIN();
