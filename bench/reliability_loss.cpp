// Ablation A3 (§VI): "the mechanism for queueing and repeating attempts to
// deliver events to services which are unavailable".
//
// Sweeps datagram loss from 0 to 50% on the PDA⟷laptop link and reports,
// for a fixed 200-event workload: delivery completeness (must stay 100%,
// exactly once, in order — the §II-C guarantee), retransmission overhead,
// and mean delivery delay. Also runs a burst-outage scenario: the
// subscriber disappears for 3 s mid-stream and the proxy's queue drains on
// its return.
#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct LossResult {
  std::size_t delivered = 0;
  bool in_order = true;
  bool duplicate_free = true;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t retransmissions = 0;
  double mean_delay_ms = 0;
};

LossResult run_loss(double loss, std::uint64_t seed) {
  LinkModel link = profiles::usb_ip_link();
  link.loss = loss;
  Testbed tb(BusEngine::kCBased, seed, link);
  auto pub = tb.laptop_client("bench.pub");
  auto sub = tb.laptop_client("bench.sub");

  LossResult r;
  std::vector<double> delays;
  std::int64_t expected = 0;
  std::vector<bool> seen(200, false);
  sub->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
    auto n = e.get_int("n");
    if (n != expected) r.in_order = false;
    if (n >= 0 && n < 200) {
      if (seen[static_cast<std::size_t>(n)]) r.duplicate_free = false;
      seen[static_cast<std::size_t>(n)] = true;
    }
    expected = n + 1;
    ++r.delivered;
    delays.push_back(to_millis(tb.ex.now() - e.timestamp()));
  });
  tb.ex.run();

  for (int i = 0; i < 200; ++i) {
    tb.ex.schedule_at(TimePoint(milliseconds(1000 + i * 250)), [&, i] {
      Event e = payload_event(256);
      e.set("n", i);
      pub->publish(std::move(e));
    });
  }
  tb.ex.run_until(TimePoint(seconds(300)));
  tb.ex.run();

  r.datagrams_sent = tb.net.stats().datagrams_sent;
  r.retransmissions = pub->channel_stats().retransmissions;
  r.mean_delay_ms = summarize(std::move(delays)).mean;
  return r;
}

void run_outage() {
  Testbed tb(BusEngine::kCBased, 404);
  auto pub = tb.laptop_client("bench.pub");
  auto sub = tb.laptop_client("bench.sub");

  std::size_t delivered = 0;
  bool in_order = true;
  std::int64_t expected = 0;
  TimePoint recovered_at{};
  sub->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
    if (e.get_int("n") != expected) in_order = false;
    expected = e.get_int("n") + 1;
    ++delivered;
    recovered_at = tb.ex.now();
  });
  tb.ex.run();

  // 40 events over 10 s; the subscriber's host is dark from t=3s to t=6s.
  for (int i = 0; i < 40; ++i) {
    tb.ex.schedule_at(TimePoint(milliseconds(500 + i * 250)), [&, i] {
      Event e = payload_event(128);
      e.set("n", i);
      pub->publish(std::move(e));
    });
  }
  tb.ex.schedule_at(TimePoint(seconds(3)), [&] { tb.laptop.set_up(false); });
  tb.ex.schedule_at(TimePoint(seconds(6)), [&] { tb.laptop.set_up(true); });
  tb.ex.run_until(TimePoint(seconds(120)));
  tb.ex.run();

  std::printf("\nburst outage (subscriber dark 3s-6s, 40 events):\n");
  std::printf("  delivered %zu/40, in_order=%s, queue drained by t=%.2fs\n",
              delivered, in_order ? "yes" : "NO",
              to_seconds(recovered_at.time_since_epoch()));
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::printf("Ablation A3: reliable delivery under datagram loss "
              "(200 events, 256 B)\n");
  print_header("exactly-once + FIFO must hold at every loss rate",
               "loss%%  delivered  in_order  dup_free  datagrams  retx  "
               "mean_delay_ms");
  for (double loss : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    LossResult r = run_loss(loss, static_cast<std::uint64_t>(loss * 1000) + 3);
    std::printf("%5.0f  %9zu  %8s  %8s  %9llu  %4llu  %13.1f\n", loss * 100,
                r.delivered, r.in_order ? "yes" : "NO",
                r.duplicate_free ? "yes" : "NO",
                static_cast<unsigned long long>(r.datagrams_sent),
                static_cast<unsigned long long>(r.retransmissions),
                r.mean_delay_ms);
  }
  std::printf(
      "\nnote: events are offered at a fixed 4/s; above ~20%% loss the "
      "channel's goodput drops below the\noffered rate, so mean delay is "
      "dominated by queueing backlog — delivery still completes exactly "
      "once, in order.\n");
  run_outage();
  return 0;
}
