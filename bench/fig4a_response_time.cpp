// Figure 4(a): "Variation in end-to-end delay against data sizes."
//
// One publisher and one subscriber on the laptop, the event bus on the PDA;
// payload swept 0–5000 bytes. Response time = publish() call → event
// delivered to the subscriber's handler. Two series: the Siena-based bus
// and the dedicated C-based bus.
//
// Paper anchors (read off Figure 4(a)): Siena-based ≈90 ms at 0 B rising to
// ≈550 ms at 5000 B; C-based ≈45 ms rising to ≈240 ms. We match the shape:
// the C-based engine is ~2× faster at all sizes and the gap grows linearly
// with payload (translation + extra copies).
#include "bench_util.hpp"

namespace amuse::bench {
namespace {

Stats measure_response(BusEngine engine, std::size_t payload,
                       int repetitions) {
  // coalesce=false: this figure anchors against the paper's measurements,
  // so it runs the paper's wire behaviour (ack per DATA frame — the ack's
  // PDA datagram charge lands ahead of the fan-out send, as in §V).
  // Fig. 4(b) carries the coalescing A/B.
  Testbed tb(engine, /*seed=*/payload + 17, profiles::usb_ip_link(),
             /*coalesce=*/false);
  auto pub = tb.laptop_client("bench.pub");
  auto sub = tb.laptop_client("bench.sub");

  std::vector<double> samples_ms;
  sub->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
    samples_ms.push_back(to_millis(tb.ex.now() - e.timestamp()));
  });
  tb.ex.run();

  // Warm-up event (fills code paths, first-event effects), then spaced
  // probes so each measures an idle system like the paper's ping-style runs.
  pub->publish(payload_event(payload));
  tb.ex.run();
  samples_ms.clear();

  for (int i = 0; i < repetitions; ++i) {
    tb.ex.schedule_at(TimePoint(seconds(10 + i * 2)),
                      [&] { pub->publish(payload_event(payload)); });
  }
  tb.ex.run();
  return summarize(std::move(samples_ms));
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::printf("Figure 4(a): response time vs payload size\n");
  std::printf("(event bus on simulated iPAQ hx4700; publisher/subscriber on "
              "simulated P3 laptop;\n usb-ip link: 0.6-2.3 ms latency, "
              "575 KB/s)\n");
  print_header("response time (ms), 30 probes per point",
               "payload_B  siena_mean  siena_min  siena_max  cbased_mean  "
               "cbased_min  cbased_max  speedup");

  for (std::size_t payload = 0; payload <= 5000; payload += 250) {
    Stats siena = measure_response(BusEngine::kSienaBased, payload, 30);
    Stats cbased = measure_response(BusEngine::kCBased, payload, 30);
    std::printf("%9zu  %10.1f  %9.1f  %9.1f  %11.1f  %10.1f  %10.1f  %6.2fx\n",
                payload, siena.mean, siena.min, siena.max, cbased.mean,
                cbased.min, cbased.max, siena.mean / cbased.mean);
  }
  std::printf(
      "\npaper anchors: siena ~90ms@0B -> ~550ms@5000B; "
      "c-based ~45ms@0B -> ~240ms@5000B\n");
  return 0;
}
