// Shared helpers for the reproduction benchmarks: the simulated PDA⟷laptop
// testbed of §IV/§V, summary statistics and table printing.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus_client.hpp"
#include "bus/event_bus.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace amuse::bench {

struct Stats {
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  std::size_t n = 0;
};

inline Stats summarize(std::vector<double> xs) {
  Stats s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.n = xs.size();
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = xs[xs.size() / 2];
  s.p95 = xs[static_cast<std::size_t>(static_cast<double>(xs.size() - 1) *
                                      0.95)];
  double sum = 0;
  for (double v : xs) sum += v;
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

/// Zeroes the reliable channel's datagram-economy knobs: one frame per
/// message, one ack per DATA frame — the paper's original wire behaviour.
inline void disable_coalescing(ReliableChannelConfig& c) {
  c.max_batch_messages = 0;
  c.max_batch_bytes = 0;
  c.ack_delay = Duration{};
}

/// The paper's testbed: event bus on the iPAQ PDA, peer services on the
/// laptop, joined by the measured USB-IP link. Members are added directly
/// (no discovery) so the benchmark isolates the event-bus path.
/// `coalesce=false` reproduces the paper's wire behaviour (no frame
/// coalescing, no delayed acks) for A/B comparisons.
struct Testbed {
  explicit Testbed(BusEngine engine, std::uint64_t seed = 1,
                   LinkModel link = profiles::usb_ip_link(),
                   bool coalesce = true)
      : coalesce_frames(coalesce),
        net(ex, seed),
        pda(net.add_host("ipaq-hx4700", profiles::pda_ipaq_hx4700())),
        laptop(net.add_host("laptop-p3", profiles::laptop_p3_1200())) {
    net.set_default_link(link);
    EventBusConfig cfg;
    cfg.engine = engine;
    cfg.host = &pda;  // bus software costs are charged to the PDA
    // A generous initial timeout: response times on the PDA reach ~600 ms
    // at 5 KB payloads, and the adaptive RTO only kicks in after the first
    // sample. Without this the very first large event double-sends.
    cfg.channel.rto_initial = seconds(2);
    if (!coalesce_frames) disable_coalescing(cfg.channel);
    bus = std::make_unique<EventBus>(ex, net.create_endpoint(pda), cfg);
  }

  std::unique_ptr<BusClient> laptop_client(const std::string& type) {
    auto transport = net.create_endpoint(laptop);
    bus->add_member(MemberInfo{transport->local_id(), type, "service"});
    BusClientConfig cfg;
    cfg.channel.rto_initial = seconds(2);
    if (!coalesce_frames) disable_coalescing(cfg.channel);
    return std::make_unique<BusClient>(ex, std::move(transport),
                                       bus->bus_id(), cfg);
  }

  bool coalesce_frames;
  SimExecutor ex;
  SimNetwork net;
  SimHost& pda;
  SimHost& laptop;
  std::unique_ptr<EventBus> bus;
};

/// Event with an opaque payload of `n` bytes — the Figure 4 workload.
inline Event payload_event(std::size_t n) {
  Event e("perf.payload");
  e.set("data", Bytes(n, 0x5A));
  return e;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n== %s ==\n%s\n", title, columns);
}

}  // namespace amuse::bench
