// Ablation A6: the real (wall-clock) cost of the Siena translation layer —
// the paper's explanation for Figure 4's gap: "the much simpler codebase
// not requiring the same data translations Siena required, including
// translation to or from our own data types" (§V).
//
// Compares, per payload size: binary event encode+decode (what the C-based
// bus does) vs the full Siena round trip (format every attribute to text,
// parse it back), plus filter translation.
#include <benchmark/benchmark.h>

#include "pubsub/codec.hpp"
#include "pubsub/siena_translation.hpp"

namespace amuse {
namespace {

Event make_event(std::size_t payload) {
  Event e("vitals.waveform");
  e.set("member", std::int64_t{123456});
  e.set("hr", 71.5);
  e.set("data", Bytes(payload, 0xA5));
  return e;
}

void BM_BinaryCodecRoundTrip(benchmark::State& state) {
  Event e = make_event(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Event back = decode_event(encode_event(e));
    benchmark::DoNotOptimize(&back);
  }
  state.counters["payload_B"] = static_cast<double>(state.range(0));
}

void BM_SienaRoundTrip(benchmark::State& state) {
  Event e = make_event(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Event back = siena_round_trip(e);
    benchmark::DoNotOptimize(&back);
  }
  state.counters["payload_B"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_BinaryCodecRoundTrip)->Arg(0)->Arg(250)->Arg(1000)->Arg(3000)->Arg(5000);
BENCHMARK(BM_SienaRoundTrip)->Arg(0)->Arg(250)->Arg(1000)->Arg(3000)->Arg(5000);

void BM_FilterToSienaText(benchmark::State& state) {
  Filter f;
  f.where("type", Op::kEq, "vitals.heartrate")
      .where("hr", Op::kGt, 120)
      .where("member", Op::kEq, std::int64_t{123456});
  for (auto _ : state) {
    Filter back = parse_siena_filter(to_siena_filter(f));
    benchmark::DoNotOptimize(&back);
  }
}
BENCHMARK(BM_FilterToSienaText);

void BM_FilterBinaryCodec(benchmark::State& state) {
  Filter f;
  f.where("type", Op::kEq, "vitals.heartrate")
      .where("hr", Op::kGt, 120)
      .where("member", Op::kEq, std::int64_t{123456});
  for (auto _ : state) {
    Filter back = decode_filter(encode_filter(f));
    benchmark::DoNotOptimize(&back);
  }
}
BENCHMARK(BM_FilterBinaryCodec);

}  // namespace
}  // namespace amuse

BENCHMARK_MAIN();
