// §V in-text link baseline: "The latency on the link is 1.5ms on average
// (0.6ms minimum, 2.3ms maximum taken over the link for 1 minute)" and
// "the link can sustain a throughput of approximately 575KB/s when simply
// transferring data from one host to another."
//
// Raw datagrams over the simulated PDA⟷laptop link, no bus, no reliability
// layer — this validates the substrate the Figure 4 experiments run on.
#include "bench_util.hpp"

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  SimExecutor ex;
  SimNetwork net(ex, 7);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& pda = net.add_host("ipaq", profiles::ideal_host());
  SimHost& laptop = net.add_host("laptop", profiles::ideal_host());
  auto a = net.create_endpoint(pda);
  auto b = net.create_endpoint(laptop);

  // --- Latency probes: one small datagram every 100 ms for 1 minute.
  std::vector<double> latencies_ms;
  TimePoint sent;
  b->set_receive_handler([&](ServiceId, BytesView) {
    latencies_ms.push_back(to_millis(ex.now() - sent));
  });
  for (int i = 0; i < 600; ++i) {
    ex.schedule_at(TimePoint(milliseconds(i * 100)), [&, i] {
      sent = TimePoint(milliseconds(i * 100));
      a->send(b->local_id(), Bytes{0x42});
    });
  }
  ex.run();
  Stats lat = summarize(std::move(latencies_ms));
  std::printf("link latency over 1 minute (600 probes):\n");
  std::printf("  mean %.2f ms   min %.2f ms   max %.2f ms   p95 %.2f ms\n",
              lat.mean, lat.min, lat.max, lat.p95);
  std::printf("  paper: mean 1.5 ms, min 0.6 ms, max 2.3 ms\n");

  // --- Raw capacity: blast 1400-byte datagrams for 10 s of simulated time.
  std::uint64_t bytes = 0;
  TimePoint first{};
  TimePoint last{};
  bool got_any = false;
  b->set_receive_handler([&](ServiceId, BytesView data) {
    if (!got_any) {
      got_any = true;
      first = ex.now();
    }
    bytes += data.size();
    last = ex.now();
  });
  Bytes chunk(1400, 0);
  for (int i = 0; i < 5000; ++i) a->send(b->local_id(), chunk);
  ex.run();
  double secs = to_seconds(last - first);
  std::printf("\nraw transfer capacity (5000 x 1400 B back-to-back):\n");
  std::printf("  %.1f KB/s over %.2f s\n",
              static_cast<double>(bytes) / 1024.0 / secs, secs);
  std::printf("  paper: approximately 575 KB/s\n");
  return 0;
}
