// Ablation A4 (§VI): "power-saving benefits from quenching techniques such
// as those demonstrated in the Elvin publish/subscribe system".
//
// A chatty sensor publishes a mixed event stream; only a fraction of event
// types have any subscriber. With quenching the bus pushes its filter table
// to the publisher, which suppresses unwanted events *before* transmitting
// — radio transmissions are the dominant power cost on body-worn devices,
// so suppressed datagrams are the figure of merit.
#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct QuenchResult {
  std::uint64_t published = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t bytes = 0;
  std::uint64_t delivered = 0;
};

QuenchResult run(bool quench, int wanted_types_of_10) {
  SimExecutor ex;
  SimNetwork net(ex, 5 + static_cast<std::uint64_t>(wanted_types_of_10));
  net.set_default_link(profiles::usb_ip_link());
  SimHost& pda = net.add_host("pda", profiles::pda_ipaq_hx4700());
  SimHost& laptop = net.add_host("laptop", profiles::laptop_p3_1200());

  EventBusConfig cfg;
  cfg.quench = quench;
  cfg.host = &pda;
  EventBus bus(ex, net.create_endpoint(pda), cfg);

  auto pub_t = net.create_endpoint(laptop);
  bus.add_member(MemberInfo{pub_t->local_id(), "sensor.multi", "sensor"});
  BusClientConfig ccfg;
  ccfg.quench = quench;
  BusClient pub(ex, std::move(pub_t), bus.bus_id(), ccfg);

  auto sub_t = net.create_endpoint(laptop);
  bus.add_member(MemberInfo{sub_t->local_id(), "console", "nurse"});
  BusClient sub(ex, std::move(sub_t), bus.bus_id());

  QuenchResult r;
  for (int t = 0; t < wanted_types_of_10; ++t) {
    sub.subscribe(Filter::for_type("chan." + std::to_string(t)),
                  [&](const Event&) { ++r.delivered; });
  }
  ex.run();
  net.reset_stats();

  // 1000 events round-robin over 10 channels.
  for (int i = 0; i < 1000; ++i) {
    ex.schedule_at(TimePoint(milliseconds(i * 50)), [&, i] {
      Event e("chan." + std::to_string(i % 10));
      e.set("data", Bytes(128, 0));
      pub.publish(std::move(e));
    });
  }
  ex.run_until(TimePoint(seconds(120)));
  ex.run();

  r.published = pub.stats().published;
  r.suppressed = pub.stats().quenched;
  r.datagrams = net.stats().datagrams_sent;
  r.bytes = net.stats().bytes_sent;
  return r;
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::printf("Ablation A4: Elvin-style quenching (1000 events over 10 "
              "channels, 128 B payloads)\n");
  print_header("radio cost with and without quenching",
               "wanted/10  mode      transmitted  suppressed  datagrams  "
               "bytes_on_air  delivered");
  for (int wanted : {1, 3, 5, 10}) {
    QuenchResult off = run(false, wanted);
    QuenchResult on = run(true, wanted);
    std::printf("%9d  %-8s  %11llu  %10llu  %9llu  %12llu  %9llu\n", wanted,
                "off", static_cast<unsigned long long>(off.published),
                static_cast<unsigned long long>(off.suppressed),
                static_cast<unsigned long long>(off.datagrams),
                static_cast<unsigned long long>(off.bytes),
                static_cast<unsigned long long>(off.delivered));
    std::printf("%9d  %-8s  %11llu  %10llu  %9llu  %12llu  %9llu  "
                "(%.0f%% fewer bytes)\n",
                wanted, "quench",
                static_cast<unsigned long long>(on.published),
                static_cast<unsigned long long>(on.suppressed),
                static_cast<unsigned long long>(on.datagrams),
                static_cast<unsigned long long>(on.bytes),
                static_cast<unsigned long long>(on.delivered),
                100.0 * (1.0 - static_cast<double>(on.bytes) /
                                   static_cast<double>(off.bytes)));
  }
  std::printf("\nexpected shape: savings shrink as the wanted fraction "
              "grows; delivered counts identical in both modes\n");
  return 0;
}
