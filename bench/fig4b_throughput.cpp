// Figure 4(b): "Variation in throughput against data sizes."
//
// A publisher saturates the bus with back-to-back events of a fixed payload
// size; we measure payload bytes delivered to the subscriber per second of
// simulated time. Although the raw link sustains ~575 KB/s (§V), both buses
// deliver only a few KB/s — the PDA's per-packet software costs dominate —
// and the C-based bus sustains roughly 2× the Siena-based throughput, with
// the advantage growing at larger payloads.
//
// Paper anchors (read off Figure 4(b)): C-based ≈20-22 KB/s at 3000 B,
// Siena-based ≈8-9 KB/s; both curves rise with payload (per-packet overhead
// amortises) and are concave. The `legacy` column reproduces that wire
// behaviour (one frame per message, one ack per DATA frame); the headline
// columns run with the reliable channel's frame coalescing + delayed acks,
// which amortise the per-datagram cost the paper identifies as the
// bottleneck — `dgrams_ev` is the measured datagrams per delivered event.
//
// Usage: fig4b_throughput [--json PATH]   (also prints the table)
#include <cstring>

#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct Throughput {
  double kbps = 0;
  double dgrams_per_event = 0;
};

Throughput measure_throughput(BusEngine engine, std::size_t payload,
                              bool coalesce) {
  Testbed tb(engine, /*seed=*/payload + 99, profiles::usb_ip_link(),
             coalesce);
  auto pub = tb.laptop_client("bench.pub");
  auto sub = tb.laptop_client("bench.sub");

  std::uint64_t delivered_bytes = 0;
  std::uint64_t delivered_events = 0;
  const Duration warmup = seconds(10);
  const Duration window = seconds(120);
  sub->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
    if (tb.ex.now().time_since_epoch() >= warmup) {
      delivered_bytes += e.get("data")->as_bytes().size();
      ++delivered_events;
    }
  });
  tb.ex.run();

  // Count only the steady-state window's wire traffic.
  tb.ex.schedule_at(TimePoint(warmup), [&] { tb.net.reset_stats(); });

  // Saturating source: keep the client's reliable-channel backlog topped up
  // past the send window so the window pipelines as fast as the bus
  // acknowledges and the coalescer always has a queue to pack from.
  std::function<void()> pump = [&] {
    while (pub->backlog() < 12) {
      pub->publish(payload_event(payload));
    }
    tb.ex.schedule_after(milliseconds(20), pump);
  };
  pump();
  tb.ex.run_until(TimePoint(warmup + window));

  Throughput out;
  out.kbps = static_cast<double>(delivered_bytes) / 1024.0 /
             to_seconds(window);
  if (delivered_events > 0) {
    out.dgrams_per_event =
        static_cast<double>(tb.net.stats().datagrams_sent) /
        static_cast<double>(delivered_events);
  }
  return out;
}

}  // namespace
}  // namespace amuse::bench

int main(int argc, char** argv) {
  using namespace amuse;
  using namespace amuse::bench;

  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::printf("Figure 4(b): throughput vs payload size\n");
  std::printf("(saturating publisher; payload KB delivered per second of "
              "simulated time; raw link capacity ~575 KB/s;\n"
              "legacy = frame coalescing + delayed acks off — the paper's "
              "wire behaviour; dgrams_ev = datagrams per delivered event)\n");
  print_header("throughput (KB/s), 120 s window after 10 s warm-up",
               "payload_B  siena_KBps  cbased_KBps  speedup  legacy_KBps  "
               "coalesce_gain  dgrams_ev");

  struct Row {
    std::size_t payload;
    Throughput siena, cbased, legacy;
  };
  std::vector<Row> rows;
  for (std::size_t payload = 250; payload <= 3000; payload += 250) {
    Row r{payload,
          measure_throughput(BusEngine::kSienaBased, payload, true),
          measure_throughput(BusEngine::kCBased, payload, true),
          measure_throughput(BusEngine::kCBased, payload, false)};
    std::printf("%9zu  %10.2f  %11.2f  %6.2fx  %11.2f  %12.2fx  %9.2f\n",
                r.payload, r.siena.kbps, r.cbased.kbps,
                r.cbased.kbps / r.siena.kbps, r.legacy.kbps,
                r.cbased.kbps / r.legacy.kbps, r.cbased.dgrams_per_event);
    rows.push_back(r);
  }
  std::printf(
      "\npaper anchors (legacy wire behaviour): c-based ~20-22 KB/s @3000B, "
      "siena ~8-9 KB/s @3000B; both << 575 KB/s link capacity\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig4b_throughput\",\n"
                    "  \"unit\": \"KB/s\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"payload_b\": %zu, \"siena_kbps\": %.2f, "
          "\"cbased_kbps\": %.2f, \"cbased_legacy_kbps\": %.2f, "
          "\"cbased_dgrams_per_event\": %.3f, "
          "\"legacy_dgrams_per_event\": %.3f}%s\n",
          r.payload, r.siena.kbps, r.cbased.kbps, r.legacy.kbps,
          r.cbased.dgrams_per_event, r.legacy.dgrams_per_event,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
