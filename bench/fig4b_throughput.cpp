// Figure 4(b): "Variation in throughput against data sizes."
//
// A publisher saturates the bus with back-to-back events of a fixed payload
// size; we measure payload bytes delivered to the subscriber per second of
// simulated time. Although the raw link sustains ~575 KB/s (§V), both buses
// deliver only a few KB/s — the PDA's per-packet software costs dominate —
// and the C-based bus sustains roughly 2× the Siena-based throughput, with
// the advantage growing at larger payloads.
//
// Paper anchors (read off Figure 4(b)): C-based ≈20-22 KB/s at 3000 B,
// Siena-based ≈8-9 KB/s; both curves rise with payload (per-packet overhead
// amortises) and are concave.
#include "bench_util.hpp"

namespace amuse::bench {
namespace {

double measure_throughput(BusEngine engine, std::size_t payload) {
  Testbed tb(engine, /*seed=*/payload + 99);
  auto pub = tb.laptop_client("bench.pub");
  auto sub = tb.laptop_client("bench.sub");

  std::uint64_t delivered_bytes = 0;
  const Duration warmup = seconds(10);
  const Duration window = seconds(120);
  sub->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
    if (tb.ex.now().time_since_epoch() >= warmup) {
      delivered_bytes += e.get("data")->as_bytes().size();
    }
  });
  tb.ex.run();

  // Saturating source: keep the client's reliable-channel backlog topped up
  // (the window then pipelines as fast as the bus acknowledges).
  std::function<void()> pump = [&] {
    while (pub->backlog() < 4) {
      pub->publish(payload_event(payload));
    }
    tb.ex.schedule_after(milliseconds(20), pump);
  };
  pump();
  tb.ex.run_until(TimePoint(warmup + window));

  return static_cast<double>(delivered_bytes) / 1024.0 / to_seconds(window);
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::printf("Figure 4(b): throughput vs payload size\n");
  std::printf("(saturating publisher; payload KB delivered per second of "
              "simulated time; raw link capacity ~575 KB/s)\n");
  print_header("throughput (KB/s), 120 s window after 10 s warm-up",
               "payload_B  siena_KBps  cbased_KBps  speedup");

  for (std::size_t payload = 250; payload <= 3000; payload += 250) {
    double siena = measure_throughput(BusEngine::kSienaBased, payload);
    double cbased = measure_throughput(BusEngine::kCBased, payload);
    std::printf("%9zu  %10.2f  %11.2f  %6.2fx\n", payload, siena, cbased,
                cbased / siena);
  }
  std::printf(
      "\npaper anchors: c-based ~20-22 KB/s @3000B, siena ~8-9 KB/s @3000B; "
      "both << 575 KB/s link capacity\n");
  return 0;
}
