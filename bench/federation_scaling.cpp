// Federation scaling: inter-cell traffic vs interest selectivity across a
// line of federated cells (DESIGN.md §11).
//
// A publisher in cell 0 emits a mixed stream over 10 channels; members in
// every other cell subscribe to `wanted` of the 10. The A/B compares the
// interest-driven gateway (forwarding only what some downstream cell
// asked for) against a flooding gateway (a static share of everything —
// the overlay a naive bridge builds). The figure of merit is events and
// bytes crossing inter-cell links: interest-driven routing should scale
// them with selectivity while delivering exactly the same events.
//
// `--smoke` (ctest bench.federation_smoke) asserts the suppression is real
// and exact on a 2-cell run: events crossing the link == matching
// publishes, the bus's fed_events_suppressed counter == non-matching
// publishes, and the flood baseline delivers nothing more.
#include <cstring>

#include "bench_util.hpp"
#include "smc/cell.hpp"
#include "smc/gateway.hpp"
#include "smc/member.hpp"

namespace amuse::bench {
namespace {

struct FedResult {
  std::uint64_t published = 0;
  std::uint64_t crossed = 0;     // gateway forwards summed over all links
  std::uint64_t suppressed = 0;  // cell-0 publishes no gateway wanted
  std::uint64_t delivered = 0;   // deliveries at remote subscribers
  std::uint64_t bytes = 0;       // bytes on air during the publish phase
  std::uint64_t datagrams = 0;
};

FedResult run(int n_cells, int members_per_cell, int wanted_of_10,
              bool interest_driven, int events) {
  SimExecutor ex;
  SimNetwork net(ex, 0xFEDul * static_cast<std::uint64_t>(
                                   n_cells * 100 + members_per_cell * 10 +
                                   wanted_of_10) +
                         (interest_driven ? 1 : 0));
  net.set_default_link(profiles::usb_ip_link());

  auto cell_name = [](int c) { return "fed-cell-" + std::to_string(c); };
  auto cell_key = [](int c) { return to_bytes("fed-key-" + std::to_string(c)); };

  std::vector<std::unique_ptr<SelfManagedCell>> cells;
  for (int c = 0; c < n_cells; ++c) {
    SimHost& h = net.add_host("core" + std::to_string(c),
                              profiles::ideal_host());
    SmcCellConfig cc;
    cc.name = cell_name(c);
    cc.pre_shared_key = cell_key(c);
    cc.discovery.beacon_interval = milliseconds(300);
    cc.discovery.heartbeat_interval = milliseconds(300);
    auto cell = std::make_unique<SelfManagedCell>(
        ex, net.create_endpoint(h), net.create_endpoint(h), cc);
    cell->start();
    cells.push_back(std::move(cell));
  }

  auto member_config = [&](int c, const std::string& device,
                           const char* role) {
    SmcMemberConfig mc;
    mc.agent.cell_name = cell_name(c);
    mc.agent.pre_shared_key = cell_key(c);
    mc.agent.device_type = device;
    mc.agent.role = role;
    return mc;
  };

  FedResult r;
  std::vector<std::unique_ptr<SmcMember>> members;
  SmcMember* publisher = nullptr;
  for (int c = 0; c < n_cells; ++c) {
    for (int j = 0; j < members_per_cell; ++j) {
      SimHost& h = net.add_host(
          "c" + std::to_string(c) + "m" + std::to_string(j),
          profiles::ideal_host());
      auto m = std::make_unique<SmcMember>(
          ex, net.create_endpoint(h),
          member_config(c, "bench.member", ""));
      if (c == 0 && j == 0) {
        publisher = m.get();  // cell-0's first member only publishes
      } else if (c > 0) {
        // Remote members want `wanted_of_10` of the 10 channels.
        for (int t = 0; t < wanted_of_10; ++t) {
          (void)m->subscribe(Filter::for_type("chan." + std::to_string(t)),
                             [&r](const Event&) { ++r.delivered; });
        }
      }
      m->start();
      members.push_back(std::move(m));
    }
  }

  std::vector<std::unique_ptr<SmcMember>> gw_members;
  std::vector<std::unique_ptr<FederationGateway>> gateways;
  for (int l = 0; l + 1 < n_cells; ++l) {
    SimHost& h = net.add_host("gw" + std::to_string(l),
                              profiles::ideal_host());
    auto mx = std::make_unique<SmcMember>(
        ex, net.create_endpoint(h),
        member_config(l, "gateway", kGatewayRole.data()));
    auto my = std::make_unique<SmcMember>(
        ex, net.create_endpoint(h),
        member_config(l + 1, "gateway", kGatewayRole.data()));
    gateways.push_back(std::make_unique<FederationGateway>(*mx, *my));
    gateways.push_back(std::make_unique<FederationGateway>(*my, *mx));
    if (!interest_driven) {
      // Flood baseline: a static share of everything, both directions.
      gateways[gateways.size() - 2]->share(Filter());
      gateways[gateways.size() - 1]->share(Filter());
    }
    mx->start();
    my->start();
    gw_members.push_back(std::move(mx));
    gw_members.push_back(std::move(my));
  }

  // Let every cell form and the interest tables converge transitively.
  ex.run_for(seconds(6));
  net.reset_stats();
  std::uint64_t suppressed_before =
      cells[0]->bus().stats().fed_events_suppressed;
  std::vector<std::uint64_t> forwarded_before;
  for (auto& g : gateways) forwarded_before.push_back(g->stats().forwarded);

  TimePoint start = ex.now();
  for (int i = 0; i < events; ++i) {
    ex.schedule_at(start + milliseconds(40 * i), [publisher, i] {
      Event e("chan." + std::to_string(i % 10));
      e.set("data", Bytes(64, 0));
      (void)publisher->publish(std::move(e));
    });
  }
  ex.run_for(milliseconds(40 * events) + seconds(5));

  r.published = static_cast<std::uint64_t>(events);
  for (std::size_t g = 0; g < gateways.size(); ++g) {
    r.crossed += gateways[g]->stats().forwarded - forwarded_before[g];
  }
  r.suppressed =
      cells[0]->bus().stats().fed_events_suppressed - suppressed_before;
  r.bytes = net.stats().bytes_sent;
  r.datagrams = net.stats().datagrams_sent;
  return r;
}

int run_smoke() {
  std::printf("federation smoke: 2 cells, 60 events, 3/10 wanted\n");
  FedResult interest = run(2, 2, 3, true, 60);
  FedResult flood = run(2, 2, 3, false, 60);
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %-58s %s\n", what, ok ? "ok" : "VIOLATION");
    if (!ok) ++failures;
  };
  // Suppression is real and exact: only the 18 matching publishes cross,
  // and every non-matching publish is accounted in the counter.
  expect(interest.crossed == 18, "interest: crossed == matching publishes");
  expect(interest.suppressed == 42,
         "interest: fed_events_suppressed == non-matching publishes");
  expect(flood.crossed == 60, "flood: every publish crosses the link");
  // 18 matching publishes × 2 subscribed members in the remote cell.
  expect(interest.delivered == flood.delivered && interest.delivered == 36,
         "both modes deliver exactly the matching events");
  expect(interest.bytes < flood.bytes,
         "interest-driven run puts fewer bytes on air");
  if (failures != 0) {
    std::fprintf(stderr, "federation smoke: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("federation smoke: suppression exact, delivery identical\n");
  return 0;
}

int run_full(const char* json_path) {
  std::printf("Federation scaling: inter-cell traffic vs interest "
              "selectivity (line overlay, 400 events, 64 B payloads)\n");
  print_header(
      "interest-driven vs flooding gateways; crossed = events over any "
      "inter-cell link, suppressed = cell-0 publishes no gateway wanted",
      "cells  members  wanted/10  mode      crossed  suppressed  delivered"
      "  bytes_on_air  dgrams");
  struct Row {
    int cells, members, wanted;
    FedResult interest, flood;
  };
  std::vector<Row> rows;
  for (int n_cells : {2, 3, 4}) {
    for (int members : {2, 4}) {
      for (int wanted : {1, 3, 5, 10}) {
        Row row{n_cells, members, wanted,
                run(n_cells, members, wanted, true, 400),
                run(n_cells, members, wanted, false, 400)};
        for (bool interest_driven : {true, false}) {
          const FedResult& r = interest_driven ? row.interest : row.flood;
          std::printf(
              "%5d  %7d  %9d  %-8s  %7llu  %10llu  %9llu  %12llu  %6llu%s",
              n_cells, members, wanted,
              interest_driven ? "interest" : "flood",
              static_cast<unsigned long long>(r.crossed),
              static_cast<unsigned long long>(r.suppressed),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.bytes),
              static_cast<unsigned long long>(r.datagrams),
              interest_driven ? "\n" : "");
          if (!interest_driven) {
            std::printf("  (%.0f%% fewer bytes)\n",
                        100.0 * (1.0 - static_cast<double>(row.interest.bytes) /
                                           static_cast<double>(r.bytes)));
          }
        }
        rows.push_back(row);
      }
    }
  }
  std::printf("\nexpected shape: crossed scales with wanted/10 under "
              "interest routing and stays at the publish count when "
              "flooding; delivered identical in both modes; byte savings "
              "shrink as selectivity approaches 10/10\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"federation_scaling\",\n"
                    "  \"events\": 400,\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"cells\": %d, \"members_per_cell\": %d, \"wanted_of_10\": "
          "%d, \"interest_crossed\": %llu, \"interest_suppressed\": %llu, "
          "\"interest_delivered\": %llu, \"interest_bytes\": %llu, "
          "\"flood_crossed\": %llu, \"flood_delivered\": %llu, "
          "\"flood_bytes\": %llu}%s\n",
          r.cells, r.members, r.wanted,
          static_cast<unsigned long long>(r.interest.crossed),
          static_cast<unsigned long long>(r.interest.suppressed),
          static_cast<unsigned long long>(r.interest.delivered),
          static_cast<unsigned long long>(r.interest.bytes),
          static_cast<unsigned long long>(r.flood.crossed),
          static_cast<unsigned long long>(r.flood.delivered),
          static_cast<unsigned long long>(r.flood.bytes),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace amuse::bench

int main(int argc, char** argv) {
  using namespace amuse::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  return smoke ? run_smoke() : run_full(json_path);
}
