// Ablation A7 (§VI): transport migration. "Currently, we are developing a
// prototype using Bluetooth. Soon, we will test the SMC architecture using
// devices which communicate via the ZigBee wireless protocol."
//
// The generic transport layer means only the link model changes: the same
// bus code runs over the prototype's USB-IP link, 802.11b, Bluetooth 1.2
// and ZigBee (with message fragmentation enabled for ZigBee's small MTU).
// Reports response time and sustained throughput per transport at two
// payload sizes, plus the reliability layer's work on each.
#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct TransportSpec {
  const char* name;
  LinkModel link;
  std::size_t fragment = 0;  // reliable-channel fragment payload (0 = off)
};

struct Outcome {
  double response_ms = 0;
  double throughput_kbps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fragments = 0;
};

Outcome run(const TransportSpec& spec, std::size_t payload,
            std::uint64_t seed) {
  Testbed tb(BusEngine::kCBased, seed, spec.link);

  auto make_client = [&](const std::string& type) {
    auto transport = tb.net.create_endpoint(tb.laptop);
    tb.bus->add_member(
        MemberInfo{transport->local_id(), type, "service"});
    BusClientConfig cfg;
    cfg.channel.rto_initial = seconds(2);
    cfg.channel.max_fragment_payload = spec.fragment;
    return std::make_unique<BusClient>(tb.ex, std::move(transport),
                                       tb.bus->bus_id(), cfg);
  };
  // The bus-side proxies must fragment too (bus → subscriber direction).
  // EventBusConfig channel config was fixed at Testbed construction, so
  // rebuild the bus with fragmentation when needed.
  if (spec.fragment != 0) {
    EventBusConfig cfg;
    cfg.engine = BusEngine::kCBased;
    cfg.host = &tb.pda;
    cfg.channel.rto_initial = seconds(2);
    cfg.channel.max_fragment_payload = spec.fragment;
    tb.bus = std::make_unique<EventBus>(tb.ex,
                                        tb.net.create_endpoint(tb.pda), cfg);
  }
  auto pub = make_client("bench.pub");
  auto sub = make_client("bench.sub");

  Outcome out;
  // --- Response time: 15 spaced probes.
  std::vector<double> samples;
  std::uint64_t delivered_bytes = 0;
  sub->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
    samples.push_back(to_millis(tb.ex.now() - e.timestamp()));
    delivered_bytes += e.get("data")->as_bytes().size();
  });
  tb.ex.run();
  for (int i = 0; i < 15; ++i) {
    tb.ex.schedule_at(TimePoint(seconds(5 + i * 10)),
                      [&] { pub->publish(payload_event(payload)); });
  }
  tb.ex.run();
  out.response_ms = summarize(std::move(samples)).mean;

  // --- Throughput: saturate for 60 s.
  delivered_bytes = 0;
  TimePoint start = tb.ex.now() + seconds(5);
  std::function<void()> pump = [&] {
    while (pub->backlog() < 4) pub->publish(payload_event(payload));
    tb.ex.schedule_after(milliseconds(50), pump);
  };
  tb.ex.schedule_at(start, pump);
  tb.ex.run_until(start + seconds(60));
  out.throughput_kbps = static_cast<double>(delivered_bytes) / 1024.0 / 60.0;
  out.retransmissions = pub->channel_stats().retransmissions;
  out.fragments = pub->channel_stats().fragments_sent;
  return out;
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::vector<TransportSpec> specs = {
      {"usb-ip", profiles::usb_ip_link(), 0},
      {"wifi-11b", profiles::wifi_11b_link(), 0},
      {"bluetooth", profiles::bluetooth_link(), 0},
      {"zigbee", profiles::zigbee_link(), 700},  // MTU 1024: fragment
  };

  std::printf("Ablation A7: the same event bus over the paper's target "
              "transports\n(C-based engine; ZigBee uses channel-level "
              "fragmentation for its 1024 B MTU)\n");
  print_header("response time and sustained throughput per transport",
               "transport  payload_B  response_ms  throughput_KBps  retx  "
               "fragments");
  for (const TransportSpec& spec : specs) {
    for (std::size_t payload : {256u, 2048u}) {
      Outcome o = run(spec, payload, payload + 1);
      std::printf("%-9s  %9zu  %11.1f  %15.2f  %4llu  %9llu\n", spec.name,
                  payload, o.response_ms, o.throughput_kbps,
                  static_cast<unsigned long long>(o.retransmissions),
                  static_cast<unsigned long long>(o.fragments));
    }
  }
  std::printf("\nexpected shape: usb-ip ≈ wifi ≫ bluetooth > zigbee; "
              "zigbee carries 2 KB events only thanks to fragmentation;\n"
              "lossy radios show retransmissions but identical delivery "
              "semantics\n");
  return 0;
}
