// Ablation A1 (§VI future work): "variation in delays incurred depending on
// message size or number of recipients".
//
// One publisher, N subscribers (all interested in every event), payload
// fixed at 512 B. The bus delivers to each member's proxy in turn, so the
// PDA's per-packet send cost makes mean delivery delay grow linearly with
// fan-out — quantifying how far a single SMC can scale before delivery
// latency violates alarm deadlines.
//
// The encode columns expose the zero-copy event spine: the bus serialises
// each published event exactly once and shares the bytes across the whole
// fan-out, so `enc` stays equal to the event count while `reuse` grows with
// the number of recipients.
//
// `--smoke` runs a tiny matrix and exits non-zero if the encode-once
// invariant (encodes == published) is violated; CI runs it as a ctest.
#include <cstring>

#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct FanoutResult {
  Stats first_ms;  // delay until the first subscriber got the event
  Stats last_ms;   // delay until the last subscriber got it
  EventBus::Stats bus;
};

FanoutResult measure(BusEngine engine, int subscribers, int events) {
  Testbed tb(engine,
             /*seed=*/static_cast<std::uint64_t>(subscribers) * 31 + 5);
  auto pub = tb.laptop_client("bench.pub");
  std::vector<std::unique_ptr<BusClient>> subs;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(tb.laptop_client("bench.sub" + std::to_string(i)));
  }

  std::vector<double> first_ms;
  std::vector<double> last_ms;
  int remaining = 0;
  for (auto& s : subs) {
    s->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
      double ms = to_millis(tb.ex.now() - e.timestamp());
      if (remaining == subscribers) first_ms.push_back(ms);
      if (--remaining == 0) last_ms.push_back(ms);
    });
  }
  tb.ex.run();

  for (int i = 0; i < events; ++i) {
    tb.ex.schedule_at(TimePoint(seconds(5 + i * 5)), [&] {
      remaining = subscribers;
      pub->publish(payload_event(512));
    });
  }
  tb.ex.run();
  return FanoutResult{summarize(std::move(first_ms)),
                      summarize(std::move(last_ms)), tb.bus->stats()};
}

/// Encode-once invariant: every published event is serialised exactly once
/// no matter how many members the fan-out reaches. With a simulated host
/// the body is materialised at cost-model time, so every proxy delivery is
/// a reuse; without one the first delivery encodes and the rest reuse.
bool encode_invariant_holds(const FanoutResult& r, int events) {
  return r.bus.published == static_cast<std::uint64_t>(events) &&
         r.bus.encodes == r.bus.published &&
         r.bus.encode_reuses >= r.bus.deliveries - r.bus.encodes &&
         r.bus.encode_reuses <= r.bus.deliveries;
}

int run_smoke() {
  int violations = 0;
  constexpr int kEvents = 5;
  std::printf("fanout smoke: encode-once invariant, %d events per point\n",
              kEvents);
  for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
    for (int n : {1, 4, 8}) {
      FanoutResult r = measure(engine, n, kEvents);
      bool ok = encode_invariant_holds(r, kEvents);
      std::printf(
          "  %-11s subs=%-2d published=%llu encodes=%llu reuses=%llu "
          "deliveries=%llu %s\n",
          to_string(engine), n,
          static_cast<unsigned long long>(r.bus.published),
          static_cast<unsigned long long>(r.bus.encodes),
          static_cast<unsigned long long>(r.bus.encode_reuses),
          static_cast<unsigned long long>(r.bus.deliveries),
          ok ? "ok" : "VIOLATION");
      if (!ok) ++violations;
    }
  }
  if (violations != 0) {
    std::fprintf(stderr,
                 "fanout smoke: %d point(s) violated encodes == published\n",
                 violations);
    return 1;
  }
  std::printf("fanout smoke: all points hold encodes == published\n");
  return 0;
}

int run_full() {
  std::printf("Ablation A1: delivery delay vs number of recipients "
              "(512 B payload)\n");
  print_header(
      "delay to first / last recipient (ms), 20 events per point; enc = "
      "bodies serialised, reuse = cached bodies reused (c-based run)",
      "subs  siena_first  siena_last  cbased_first  cbased_last   enc  reuse");
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    FanoutResult s = measure(BusEngine::kSienaBased, n, 20);
    FanoutResult c = measure(BusEngine::kCBased, n, 20);
    std::printf("%4d  %11.1f  %10.1f  %12.1f  %11.1f  %4llu  %5llu\n", n,
                s.first_ms.mean, s.last_ms.mean, c.first_ms.mean,
                c.last_ms.mean,
                static_cast<unsigned long long>(c.bus.encodes),
                static_cast<unsigned long long>(c.bus.encode_reuses));
  }
  std::printf("\nexpected shape: last-recipient delay grows ~linearly with "
              "fan-out (PDA send cost per member);\nfirst-recipient delay "
              "stays near the 1-recipient response time; enc stays at the "
              "event count\n(encode-once) while reuse grows with fan-out\n");
  return 0;
}

}  // namespace
}  // namespace amuse::bench

int main(int argc, char** argv) {
  using namespace amuse::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return smoke ? run_smoke() : run_full();
}
