// Ablation A1 (§VI future work): "variation in delays incurred depending on
// message size or number of recipients".
//
// One publisher, N subscribers (all interested in every event), payload
// fixed at 512 B. The bus delivers to each member's proxy in turn, so the
// PDA's per-packet send cost makes mean delivery delay grow linearly with
// fan-out — quantifying how far a single SMC can scale before delivery
// latency violates alarm deadlines.
#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct FanoutResult {
  Stats first_ms;  // delay until the first subscriber got the event
  Stats last_ms;   // delay until the last subscriber got it
};

FanoutResult measure(BusEngine engine, int subscribers) {
  Testbed tb(engine, /*seed=*/subscribers * 31 + 5);
  auto pub = tb.laptop_client("bench.pub");
  std::vector<std::unique_ptr<BusClient>> subs;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(tb.laptop_client("bench.sub" + std::to_string(i)));
  }

  std::vector<double> first_ms;
  std::vector<double> last_ms;
  int remaining = 0;
  for (auto& s : subs) {
    s->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
      double ms = to_millis(tb.ex.now() - e.timestamp());
      if (remaining == subscribers) first_ms.push_back(ms);
      if (--remaining == 0) last_ms.push_back(ms);
    });
  }
  tb.ex.run();

  for (int i = 0; i < 20; ++i) {
    tb.ex.schedule_at(TimePoint(seconds(5 + i * 5)), [&] {
      remaining = subscribers;
      pub->publish(payload_event(512));
    });
  }
  tb.ex.run();
  return FanoutResult{summarize(std::move(first_ms)),
                      summarize(std::move(last_ms))};
}

}  // namespace
}  // namespace amuse::bench

int main() {
  using namespace amuse;
  using namespace amuse::bench;

  std::printf("Ablation A1: delivery delay vs number of recipients "
              "(512 B payload)\n");
  print_header("delay to first / last recipient (ms), 20 events per point",
               "subs  siena_first  siena_last  cbased_first  cbased_last");
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    FanoutResult s = measure(BusEngine::kSienaBased, n);
    FanoutResult c = measure(BusEngine::kCBased, n);
    std::printf("%4d  %11.1f  %10.1f  %12.1f  %11.1f\n", n, s.first_ms.mean,
                s.last_ms.mean, c.first_ms.mean, c.last_ms.mean);
  }
  std::printf("\nexpected shape: last-recipient delay grows ~linearly with "
              "fan-out (PDA send cost per member);\nfirst-recipient delay "
              "stays near the 1-recipient response time\n");
  return 0;
}
