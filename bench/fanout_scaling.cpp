// Ablation A1 (§VI future work): "variation in delays incurred depending on
// message size or number of recipients".
//
// One publisher, N subscribers (all interested in every event), payload
// fixed at 512 B. The bus delivers to each member's proxy in turn, so the
// PDA's per-packet send cost makes mean delivery delay grow linearly with
// fan-out — quantifying how far a single SMC can scale before delivery
// latency violates alarm deadlines.
//
// The encode columns expose the zero-copy event spine: the bus serialises
// each published event exactly once and shares the bytes across the whole
// fan-out, so `enc` stays equal to the event count while `reuse` grows with
// the number of recipients.
//
// `--smoke` runs a tiny matrix and exits non-zero if the encode-once
// invariant (encodes == published) is violated; CI runs it as a ctest.
#include <cstring>

#include "bench_util.hpp"

namespace amuse::bench {
namespace {

struct FanoutResult {
  Stats first_ms;  // delay until the first subscriber got the event
  Stats last_ms;   // delay until the last subscriber got it
  EventBus::Stats bus;
  double dgrams_per_delivery = 0;  // network datagrams per event delivered
};

FanoutResult measure(BusEngine engine, int subscribers, int events) {
  Testbed tb(engine,
             /*seed=*/static_cast<std::uint64_t>(subscribers) * 31 + 5);
  auto pub = tb.laptop_client("bench.pub");
  std::vector<std::unique_ptr<BusClient>> subs;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(tb.laptop_client("bench.sub" + std::to_string(i)));
  }

  std::vector<double> first_ms;
  std::vector<double> last_ms;
  std::uint64_t delivered = 0;
  int remaining = 0;
  for (auto& s : subs) {
    s->subscribe(Filter::for_type("perf.payload"), [&](const Event& e) {
      double ms = to_millis(tb.ex.now() - e.timestamp());
      ++delivered;
      if (remaining == subscribers) first_ms.push_back(ms);
      if (--remaining == 0) last_ms.push_back(ms);
    });
  }
  tb.ex.run();

  // Count wire traffic for the measured events only (the join/subscribe
  // exchange above is bounded setup, not steady-state cost).
  tb.net.reset_stats();
  for (int i = 0; i < events; ++i) {
    tb.ex.schedule_at(TimePoint(seconds(5 + i * 5)), [&] {
      remaining = subscribers;
      pub->publish(payload_event(512));
    });
  }
  tb.ex.run();
  FanoutResult out{summarize(std::move(first_ms)),
                   summarize(std::move(last_ms)), tb.bus->stats(), 0};
  if (delivered > 0) {
    out.dgrams_per_delivery =
        static_cast<double>(tb.net.stats().datagrams_sent) /
        static_cast<double>(delivered);
  }
  return out;
}

/// Encode-once invariant: every published event is serialised exactly once
/// no matter how many members the fan-out reaches. With a simulated host
/// the body is materialised at cost-model time, so every proxy delivery is
/// a reuse; without one the first delivery encodes and the rest reuse.
bool encode_invariant_holds(const FanoutResult& r, int events) {
  return r.bus.published == static_cast<std::uint64_t>(events) &&
         r.bus.encodes == r.bus.published &&
         r.bus.encode_reuses >= r.bus.deliveries - r.bus.encodes &&
         r.bus.encode_reuses <= r.bus.deliveries;
}

int run_smoke() {
  int violations = 0;
  constexpr int kEvents = 5;
  std::printf("fanout smoke: encode-once invariant, %d events per point\n",
              kEvents);
  for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
    for (int n : {1, 4, 8}) {
      FanoutResult r = measure(engine, n, kEvents);
      bool ok = encode_invariant_holds(r, kEvents);
      std::printf(
          "  %-11s subs=%-2d published=%llu encodes=%llu reuses=%llu "
          "deliveries=%llu %s\n",
          to_string(engine), n,
          static_cast<unsigned long long>(r.bus.published),
          static_cast<unsigned long long>(r.bus.encodes),
          static_cast<unsigned long long>(r.bus.encode_reuses),
          static_cast<unsigned long long>(r.bus.deliveries),
          ok ? "ok" : "VIOLATION");
      if (!ok) ++violations;
    }
  }
  if (violations != 0) {
    std::fprintf(stderr,
                 "fanout smoke: %d point(s) violated encodes == published\n",
                 violations);
    return 1;
  }
  std::printf("fanout smoke: all points hold encodes == published\n");
  return 0;
}

int run_full(const char* json_path) {
  std::printf("Ablation A1: delivery delay vs number of recipients "
              "(512 B payload)\n");
  print_header(
      "delay to first / last recipient (ms), 20 events per point; enc = "
      "bodies serialised, reuse = cached bodies reused; dg_dlv = network "
      "datagrams per event delivered (c-based run)",
      "subs  siena_first  siena_last  cbased_first  cbased_last   enc  "
      "reuse  dg_dlv");
  struct Row {
    int subs;
    FanoutResult siena, cbased;
  };
  std::vector<Row> rows;
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    Row r{n, measure(BusEngine::kSienaBased, n, 20),
          measure(BusEngine::kCBased, n, 20)};
    std::printf("%4d  %11.1f  %10.1f  %12.1f  %11.1f  %4llu  %5llu  %6.2f\n",
                n, r.siena.first_ms.mean, r.siena.last_ms.mean,
                r.cbased.first_ms.mean, r.cbased.last_ms.mean,
                static_cast<unsigned long long>(r.cbased.bus.encodes),
                static_cast<unsigned long long>(r.cbased.bus.encode_reuses),
                r.cbased.dgrams_per_delivery);
    rows.push_back(r);
  }
  std::printf("\nexpected shape: last-recipient delay grows ~linearly with "
              "fan-out (PDA send cost per member);\nfirst-recipient delay "
              "stays near the 1-recipient response time; enc stays at the "
              "event count\n(encode-once) while reuse grows with fan-out; "
              "dg_dlv falls toward ~2/fan-out + 2 as acks amortise\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fanout_scaling\",\n"
                    "  \"unit\": \"ms\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"subscribers\": %d, \"siena_first_ms\": %.2f, "
          "\"siena_last_ms\": %.2f, \"cbased_first_ms\": %.2f, "
          "\"cbased_last_ms\": %.2f, \"cbased_dgrams_per_delivery\": "
          "%.3f}%s\n",
          r.subs, r.siena.first_ms.mean, r.siena.last_ms.mean,
          r.cbased.first_ms.mean, r.cbased.last_ms.mean,
          r.cbased.dgrams_per_delivery, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace amuse::bench

int main(int argc, char** argv) {
  using namespace amuse::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  return smoke ? run_smoke() : run_full(json_path);
}
